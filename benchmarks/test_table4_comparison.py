"""Bench E8 — Table IV: ONE-SA vs CPU / GPU / SoC / ASIC accelerators.

Reproduced claims (shapes and bands, per the paper's abstract):

* ONE-SA runs *all three* network families; each specialized
  accelerator runs exactly one;
* large computation-efficiency gains over the CPU, several-fold over
  the GPU, modest (>1x on at least one workload) over the embedded SoC;
* comparable efficiency (paper: 83.4%–135.9%) to the
  application-specific FPGA accelerators;
* latency and power magnitudes near the paper's operating point
  (26 / 26.24 / 5.87 ms at 7.61 W).
"""

import pytest

from repro.evaluation.comparison import (
    efficiency_gains,
    format_table4,
    table4_comparison,
)


def test_table4_comparison(benchmark, print_artifact):
    entries = benchmark(table4_comparison)
    print_artifact(format_table4(entries))

    by = {(e.processor, e.workload): e for e in entries}
    gains = efficiency_gains(entries)

    # Flexibility: ONE-SA supports everything; ASIC designs do not.
    for w in ("resnet50", "bert-base", "gcn"):
        assert by[("ONE-SA", w)].supported
    assert not by[("NPE", "resnet50")].supported
    assert not by[("Angel-eye", "bert-base")].supported
    assert not by[("FTRANS", "gcn")].supported

    # Efficiency bands.
    assert max(gains["Intel CPU i7-11700"].values()) > 20
    assert max(gains["NVIDIA GPU 3090Ti"].values()) > 3
    assert max(gains["NVIDIA SoC AGX ORIN"].values()) > 1.0
    for accel in ("Angel-eye", "VGG16 accelerator", "NPE", "FTRANS"):
        for value in gains[accel].values():
            assert 0.6 < value < 1.7, (accel, value)

    # Magnitudes near the paper's reported operating point.
    assert by[("ONE-SA", "resnet50")].latency_s == pytest.approx(26e-3, rel=0.5)
    assert by[("ONE-SA", "bert-base")].latency_s == pytest.approx(26.24e-3, rel=0.5)
    assert by[("ONE-SA", "gcn")].latency_s == pytest.approx(5.87e-3, rel=0.8)
    for w in ("resnet50", "bert-base", "gcn"):
        assert by[("ONE-SA", w)].power_w == pytest.approx(7.61, rel=0.1)
