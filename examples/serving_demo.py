"""Serving example: concurrent BERT/ResNet/GCN requests on an array pool.

Builds three models, registers them with the batched
:class:`~repro.serving.InferenceEngine`, and serves a mixed burst of
requests over two :class:`~repro.systolic.array.SystolicArray` shards.
The dynamic batcher packs co-pending same-model requests into shared
GEMM tiles (bit-identical to running each request alone), the
dispatcher round-robins batches across the pool, and the run ends with
a serving-level report: latency percentiles, throughput and
cycles/request aggregated from the per-array traces.

    python examples/serving_demo.py
"""

import numpy as np

from repro.nn.executor import CPWLBackend
from repro.nn.models import GCN, SmallResNet, TinyBERT
from repro.nn.models.gcn import normalized_adjacency
from repro.serving import InferenceEngine, ClusterDispatcher
from repro.systolic import SystolicArray, SystolicConfig

GRANULARITY = 0.25


def main() -> None:
    rng = np.random.default_rng(0)

    # -- the model fleet -------------------------------------------------
    bert = TinyBERT(vocab=16, seq_len=8, dim=8, heads=2, ff_dim=16, n_layers=1)
    resnet = SmallResNet(in_channels=1, n_classes=3, seed=0)
    resnet.eval()
    adjacency = (rng.uniform(size=(6, 6)) > 0.6).astype(float)
    adjacency = np.maximum(adjacency, adjacency.T)
    a_hat = normalized_adjacency(adjacency)
    gcn = GCN(in_features=5, hidden=4, n_classes=3, seed=0)

    # -- the serving stack: 2 array shards, dynamic batching -------------
    config = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4)
    pool = ClusterDispatcher.from_arrays(
        [SystolicArray(config), SystolicArray(config)], GRANULARITY
    )
    engine = InferenceEngine(pool, max_batch_size=4, flush_timeout=1e-4)
    engine.register("bert", bert)
    engine.register("resnet", resnet)
    # GCN requests share one graph; each request carries a feature set.
    engine.register("gcn", infer_fn=lambda feats, be: gcn.infer(feats, a_hat, be))

    # -- a concurrent burst of mixed requests ----------------------------
    tokens = rng.integers(0, 16, size=(8, 8))
    images = rng.normal(size=(4, 1, 8, 8))
    features = rng.normal(size=(3, 6, 5))
    ids = {}
    for row in tokens:
        ids[engine.submit("bert", row)] = "bert"
    for img in images:
        ids[engine.submit("resnet", img)] = "resnet"
    for feats in features:
        ids[engine.submit("gcn", feats)] = "gcn"

    report = engine.run()
    print(f"Served {report.n_requests} requests on {pool.n_shards} array shards")
    print(report.summary())

    # -- spot-check: serving equals single-request inference -------------
    reference = CPWLBackend(GRANULARITY)
    first_bert = min(i for i, name in ids.items() if name == "bert")
    single = bert.infer(tokens[0][None, :], reference)[0]
    match = np.array_equal(engine.result(first_bert), single)
    print(f"\nbatched result == single-request result: {match}")

    print("\nPer-model placement (request -> shard, batch size):")
    for record in report.completed:
        print(
            f"  #{record.request.request_id:<3d} {record.request.model:<7s}"
            f" shard {record.shard}  batch of {record.batch_size}"
            f"  latency {record.latency * 1e6:8.1f} us"
        )


if __name__ == "__main__":
    main()
