"""KV-prefix cache: bit-identity, exact cycle accounting, eviction
budgets, batch purity, placement affinity, and the serving-invariant
fuzz suite spanning scheduler + cluster + cache.

The two load-bearing claims of the subsystem are property-tested here
across random shapes, design points and request streams:

* a prefix **hit is bit-identical** to cold execution — same outputs,
  element for element, on every backend;
* a hit reduces ``total_cycles`` by **exactly** the closed-form cost of
  the skipped operations
  (:func:`repro.nn.workload.transformer_prefix_savings`).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.nn.executor import ArrayBackend, CPWLBackend, KVTap
from repro.nn.models import TinyBERT
from repro.nn.workload import transformer_prefix_savings
from repro.serving import (
    ClusterSpec,
    InferenceEngine,
    PrefixAffinePlacement,
    PrefixCache,
    PrefixEntry,
    TenantConfig,
    TransformerPrefixAdapter,
)
from repro.systolic import SystolicArray, SystolicConfig


# ---------------------------------------------------------------------------
# Shared strategies / helpers
# ---------------------------------------------------------------------------
def _tokens_with_prefix(rng, n, seq_len, prefix_len, vocab=16):
    """A request batch whose rows share the first ``prefix_len`` tokens."""
    prefix = rng.integers(0, vocab, size=prefix_len)
    suffix = rng.integers(0, vocab, size=(n, seq_len - prefix_len))
    return np.concatenate([np.broadcast_to(prefix, (n, prefix_len)), suffix], axis=1)


model_shapes = st.tuples(
    st.sampled_from([8, 10, 12]),        # seq_len
    st.sampled_from([(8, 2), (16, 4)]),  # (dim, heads)
    st.sampled_from([8, 16]),            # ff_dim
    st.integers(min_value=1, max_value=2),  # n_layers
)

design_points = st.sampled_from(
    [
        SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4),
        SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=8),
        SystolicConfig(pe_rows=8, pe_cols=8, macs_per_pe=16),
    ]
)


class _Payload:
    """Stub cache payload of a declared size (eviction tests)."""

    def __init__(self, nbytes: int):
        self.nbytes = nbytes


def _entry(key: str, nbytes: int, tenant="t", model="m", tokens=None) -> PrefixEntry:
    tokens = np.arange(4, dtype=np.int64) if tokens is None else tokens
    return PrefixEntry(
        tenant=tenant,
        model=model,
        prefix_key=key,
        prefix_tokens=tokens,
        payload=_Payload(max(0, nbytes - tokens.nbytes)),
    )


# ---------------------------------------------------------------------------
# Bit-identity + exact cycle accounting (the tentpole claims)
# ---------------------------------------------------------------------------
class TestPrefixEquivalence:
    @given(
        shape=model_shapes,
        config=design_points,
        batch=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**16),
        prefix_frac=st.floats(min_value=0.15, max_value=0.9),
    )
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_hit_bit_identical_and_cycles_exact(
        self, shape, config, batch, seed, prefix_frac
    ):
        """Cold vs cached-prefix execution: identical bits, and the
        traced-cycle delta equals the closed form exactly."""
        seq_len, (dim, heads), ff_dim, n_layers = shape
        prefix_len = min(seq_len - 1, max(1, int(seq_len * prefix_frac)))
        rng = np.random.default_rng(seed)
        model = TinyBERT(
            vocab=16, seq_len=seq_len, dim=dim, heads=heads, ff_dim=ff_dim,
            n_layers=n_layers, causal=True, seed=seed % 17,
        )
        tokens = _tokens_with_prefix(rng, batch, seq_len, prefix_len)

        array = SystolicArray(config)
        backend = ArrayBackend(array, 0.25)
        model.infer(tokens[:1], backend)  # warm the CPWL table preload
        array.trace.clear()

        tap = KVTap(prefix_len)
        cold = model.infer(tokens, backend, kv_tap=tap)
        cold_cycles = array.total_cycles
        array.trace.clear()

        warm = model.infer_suffix(tokens, tap, backend)
        warm_cycles = array.total_cycles

        assert np.array_equal(cold, warm)
        saved = transformer_prefix_savings(
            batch, seq_len, prefix_len, dim, heads, ff_dim, n_layers, config
        )
        assert cold_cycles - warm_cycles == saved
        assert saved > 0

    @given(
        shape=model_shapes,
        batch=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=10, deadline=None)
    def test_hit_bit_identical_on_cpwl_backend(self, shape, batch, seed):
        """Bit-identity holds on the untraced CPWL fast path too."""
        seq_len, (dim, heads), ff_dim, n_layers = shape
        prefix_len = seq_len // 2
        rng = np.random.default_rng(seed)
        model = TinyBERT(
            vocab=16, seq_len=seq_len, dim=dim, heads=heads, ff_dim=ff_dim,
            n_layers=n_layers, causal=True, seed=seed % 13,
        )
        tokens = _tokens_with_prefix(rng, batch, seq_len, prefix_len)
        backend = CPWLBackend(0.25)
        tap = KVTap(prefix_len)
        cold = model.infer(tokens, backend, kv_tap=tap)
        warm = model.infer_suffix(tokens, tap, backend)
        assert np.array_equal(cold, warm)

    def test_prefix_reuse_requires_causal_model(self):
        model = TinyBERT(seq_len=8, causal=False)
        with pytest.raises(ValueError, match="causal"):
            TransformerPrefixAdapter(model, 4)
        with pytest.raises(ValueError, match="causal"):
            model.infer_suffix(np.zeros((1, 8), dtype=int), KVTap(4), CPWLBackend(0.25))


# ---------------------------------------------------------------------------
# The cache data structure: LRU under a byte budget
# ---------------------------------------------------------------------------
class TestEvictionBudget:
    @given(
        budget=st.integers(min_value=64, max_value=4096),
        sizes=st.lists(st.integers(min_value=1, max_value=2048), min_size=1, max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_resident_bytes_never_exceed_budget(self, budget, sizes):
        """The eviction-budget invariant holds after every insert."""
        cache = PrefixCache(shard_budget_bytes=budget)
        accepted = rejected = 0
        for i, size in enumerate(sizes):
            ok = cache.insert(0, _entry(f"k{i}", size))
            assert cache.resident_bytes(0) <= budget
            assert sum(e.nbytes for e in cache.entries(0)) == cache.resident_bytes(0)
            if ok:
                accepted += 1
                assert size <= budget
            else:
                rejected += 1
                assert size > budget
        assert cache.insertions == accepted
        assert cache.rejections == rejected

    def test_lru_eviction_order(self):
        cache = PrefixCache(shard_budget_bytes=300)
        tokens = np.arange(4, dtype=np.int64)
        for key in ("a", "b", "c"):
            assert cache.insert(0, _entry(key, 100, tokens=tokens))
        # Touch "a" so "b" is now least recently used.
        assert cache.lookup(0, "t", "m", "a", tokens) is not None
        cache.insert(0, _entry("d", 100, tokens=tokens))
        keys = [e.prefix_key for e in cache.entries(0)]
        assert "b" not in keys and set(keys) == {"c", "a", "d"}
        assert cache.evictions == 1
        # Evicted prompt is a miss now.
        assert cache.lookup(0, "t", "m", "b", tokens) is None

    def test_shards_have_independent_budgets(self):
        cache = PrefixCache(shard_budget_bytes=150)
        tokens = np.arange(4, dtype=np.int64)
        assert cache.insert(0, _entry("a", 100, tokens=tokens))
        assert cache.insert(1, _entry("a", 100, tokens=tokens))
        assert cache.evictions == 0
        assert cache.resident_shards("t", "m", "a") == (0, 1)

    def test_digest_collision_is_verified_miss(self):
        cache = PrefixCache()
        tokens = np.arange(4, dtype=np.int64)
        cache.insert(0, _entry("k", 64, tokens=tokens))
        other = tokens + 1
        assert cache.lookup(0, "t", "m", "k", other) is None
        assert cache.collisions == 1
        assert cache.lookup(0, "t", "m", "k", tokens) is not None

    def test_tenants_never_share_entries(self):
        cache = PrefixCache()
        tokens = np.arange(4, dtype=np.int64)
        cache.insert(0, _entry("k", 64, tenant="gold", tokens=tokens))
        assert cache.lookup(0, "free", "m", "k", tokens) is None
        assert cache.lookup(0, "gold", "m", "k", tokens) is not None


# ---------------------------------------------------------------------------
# Engine integration: batch purity, affinity, report accounting
# ---------------------------------------------------------------------------
def _make_model(seq_len=8, dim=8, heads=2, ff_dim=16, n_layers=1, seed=0):
    return TinyBERT(
        vocab=16, seq_len=seq_len, dim=dim, heads=heads, ff_dim=ff_dim,
        n_layers=n_layers, causal=True, seed=seed,
    )


def _make_engine(n_shards=2, cache=None, model=None, prefix_len=5, **kw):
    config = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=8)
    model = model or _make_model()
    engine = InferenceEngine(
        ClusterSpec.homogeneous(config, n_shards).build(),
        max_batch_size=kw.pop("max_batch_size", 4),
        flush_timeout=kw.pop("flush_timeout", 1e-4),
        prefix_cache=cache,
        **kw,
    )
    adapter = (
        TransformerPrefixAdapter(model, prefix_len) if cache is not None else None
    )
    engine.register("bert", model, prefix_adapter=adapter)
    return engine, model


class TestEngineIntegration:
    def test_engine_outputs_bit_identical_with_cache(self):
        """The full serving path: cached engine == cache-less engine."""
        model = _make_model(seq_len=10, n_layers=2)
        rng = np.random.default_rng(3)
        tokens = _tokens_with_prefix(rng, 12, 10, 6)

        outputs = {}
        for label, cache in (("cold", None), ("cached", PrefixCache())):
            engine, _ = _make_engine(cache=cache, model=model, prefix_len=6)
            ids = [engine.submit("bert", row) for row in tokens]
            report = engine.run()
            outputs[label] = [engine.result(i) for i in ids]
            if label == "cached":
                assert report.prefix_hits > 0
                assert report.prefix_misses >= 1
                assert report.prefix_cycles_saved > 0
        for a, b in zip(outputs["cold"], outputs["cached"]):
            assert np.array_equal(a, b)

    def test_hits_and_misses_never_mix_in_a_batch(self):
        """Batches are pure: one prompt per batch, whole-batch decisions."""
        model = _make_model()
        rng = np.random.default_rng(5)
        streams = [
            _tokens_with_prefix(rng, 6, 8, 5) for _ in range(3)  # 3 prompts
        ]
        engine, _ = _make_engine(cache=PrefixCache(), model=model)
        ids = []
        # Interleave prompts so naive arrival-order batching would mix them.
        for i in range(6):
            for stream in streams:
                ids.append(engine.submit("bert", stream[i]))
        report = engine.run()
        assert len(report.completed) == 18
        by_batch = {}
        for record in report.completed:
            by_batch.setdefault((record.shard, record.batch_index), []).append(record)
        for records in by_batch.values():
            keys = {r.request.prefix_key for r in records}
            assert len(keys) == 1, "a batch mixed prompts"
        # Each prompt: first batch misses, later ones hit.
        assert report.prefix_misses == 3
        assert report.prefix_hits == len(report.prefix_events) - 3

    def test_affinity_prefers_holding_shard(self):
        """Once a prompt is resident, its batches stay on that shard."""
        model = _make_model()
        rng = np.random.default_rng(9)
        tokens = _tokens_with_prefix(rng, 16, 8, 5)
        engine, _ = _make_engine(n_shards=4, cache=PrefixCache(), model=model)
        assert isinstance(engine.placement, PrefixAffinePlacement)
        for row in tokens:
            engine.submit("bert", row)
        report = engine.run()
        shards = {event.shard for event in report.prefix_events}
        assert len(shards) == 1, "prefix batches scattered across shards"
        hit_events = [e for e in report.prefix_events if e.hit]
        assert hit_events and all(e.cycles_saved > 0 for e in hit_events)

    def test_report_cycles_saved_is_exact(self):
        """report.prefix_cycles_saved equals the measured cold-vs-cached
        trace difference on a single shard (no preload skew)."""
        model = _make_model(seq_len=10, n_layers=2)
        rng = np.random.default_rng(11)
        tokens = _tokens_with_prefix(rng, 8, 10, 7)

        def run(cache):
            engine, _ = _make_engine(
                n_shards=1, cache=cache, model=model, prefix_len=7
            )
            # Warm the shard's approximator preload so both runs trace
            # exactly the same op set.
            backend = engine.dispatcher.backends[0]
            model.infer(tokens[:1], backend)
            engine.dispatcher.array_of(0).trace.clear()
            for row in tokens:
                engine.submit("bert", row)
            return engine.run()

        cold = run(None)
        cached = run(PrefixCache())
        assert cached.prefix_hits == 1 and cached.prefix_misses == 1
        assert (
            cold.total_cycles - cached.total_cycles == cached.prefix_cycles_saved
        )

    def test_failed_submit_leaves_engine_state_untouched(self):
        """A submit rejected by prefix-key validation must not shift
        the arrival default of later submissions."""
        model = _make_model()
        engine, _ = _make_engine(cache=PrefixCache(), model=model)
        rng = np.random.default_rng(17)
        engine.submit("bert", rng.integers(0, 16, size=8), arrival=1e-3)
        with pytest.raises(ValueError, match="token row"):
            engine.submit("bert", rng.integers(0, 16, size=5), arrival=2.0)
        # The implicit arrival must be the last *successful* one, not
        # the rejected request's 2.0.
        rid = engine.submit("bert", rng.integers(0, 16, size=8))
        report = engine.run()
        record = next(r for r in report.completed if r.request.request_id == rid)
        assert record.request.arrival == 1e-3
        assert engine.result(rid) is not None

    def test_prefix_adapter_requires_batchable(self):
        engine, model = _make_engine(cache=PrefixCache())
        with pytest.raises(ValueError, match="batchable"):
            engine.register(
                "bad", model, batchable=False,
                prefix_adapter=TransformerPrefixAdapter(model, 5),
            )

    def test_register_rejects_adapter_wrapping_other_model(self):
        engine, model = _make_engine(cache=PrefixCache())
        other = _make_model(seed=99)
        with pytest.raises(ValueError, match="different model"):
            engine.register(
                "bad", model, prefix_adapter=TransformerPrefixAdapter(other, 5)
            )

    def test_prefix_entry_does_not_freeze_caller_tokens(self):
        tokens = np.arange(4, dtype=np.int64)
        entry = _entry("k", 64, tokens=tokens)
        tokens[0] = 7  # caller's array stays writable...
        assert entry.prefix_tokens[0] == 0  # ...and the entry owns a copy

    def test_reset_clears_cache(self):
        model = _make_model()
        rng = np.random.default_rng(13)
        tokens = _tokens_with_prefix(rng, 4, 8, 5)
        cache = PrefixCache()
        engine, _ = _make_engine(cache=cache, model=model)
        for row in tokens:
            engine.submit("bert", row)
        engine.run()
        assert any(cache.resident_bytes(s) for s in range(2))
        engine.reset()
        assert all(cache.resident_bytes(s) == 0 for s in range(2))


# ---------------------------------------------------------------------------
# Serving-invariant fuzz: scheduler x cluster x cache
# ---------------------------------------------------------------------------
class TestServingInvariantFuzz:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n_requests=st.integers(min_value=1, max_value=30),
        n_prompts=st.integers(min_value=1, max_value=3),
        max_batch=st.integers(min_value=1, max_value=5),
        queue_cap=st.one_of(st.none(), st.integers(min_value=1, max_value=4)),
        budget=st.sampled_from([256, 4096, 32 << 20]),
    )
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_streams_preserve_serving_invariants(
        self, seed, n_requests, n_prompts, max_batch, queue_cap, budget
    ):
        """Arbitrary multi-tenant request streams through the full stack
        (tenant scheduler + heterogeneous cluster + prefix cache) keep
        every serving invariant."""
        rng = np.random.default_rng(seed)
        seq_len, prefix_len = 8, 5
        model = _make_model(seq_len=seq_len)
        plain = _make_model(seq_len=seq_len, seed=1)
        cache = PrefixCache(shard_budget_bytes=budget)
        pool = ClusterSpec.heterogeneous(
            [
                SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=8),
                SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4, clock_hz=100e6),
            ]
        ).build()
        engine = InferenceEngine(
            pool,
            max_batch_size=max_batch,
            flush_timeout=1e-4,
            prefix_cache=cache,
        )
        engine.register(
            "bert", model, prefix_adapter=TransformerPrefixAdapter(model, prefix_len)
        )
        engine.register("plain", plain)  # no prefix adapter: cold always
        engine.register_tenant("gold", weight=3.0, slo_latency=5e-3)
        engine.tenants.register(
            TenantConfig(tenant_id="free", weight=1.0, max_queue_depth=queue_cap)
        )
        prompts = [rng.integers(0, 16, size=prefix_len) for _ in range(n_prompts)]

        submitted = []
        arrival = 0.0
        for _ in range(n_requests):
            arrival += float(rng.choice([0.0, 0.0, 5e-5, 2e-4]))
            tenant = str(rng.choice(["gold", "free"]))
            if rng.random() < 0.75:
                prompt = prompts[rng.integers(0, n_prompts)]
                tokens = np.concatenate(
                    [prompt, rng.integers(0, 16, size=seq_len - prefix_len)]
                )
                rid = engine.submit("bert", tokens, arrival, tenant=tenant)
            else:
                tokens = rng.integers(0, 16, size=seq_len)
                rid = engine.submit("plain", tokens, arrival, tenant=tenant)
            submitted.append(rid)

        report = engine.run()

        # Conservation: every submitted request completed or shed, never both.
        completed_ids = {r.request.request_id for r in report.completed}
        shed_ids = {r.request.request_id for r in report.shed}
        assert completed_ids.isdisjoint(shed_ids)
        assert completed_ids | shed_ids == set(submitted)

        # No tenant or prompt mixing within any executed batch.
        by_batch = {}
        for record in report.completed:
            by_batch.setdefault((record.shard, record.batch_index), []).append(record)
        for records in by_batch.values():
            assert len({r.request.tenant for r in records}) == 1
            assert len({r.request.model for r in records}) == 1
            assert len({r.request.prefix_key for r in records}) == 1

        # Exact cycle attribution: per-tenant cycles sum to the total.
        assert sum(report.tenant_cycles.values()) == report.total_cycles

        # Prefix counters are consistent with the executed batches.
        prefix_batches = {
            (r.shard, r.batch_index)
            for r in report.completed
            if r.request.prefix_key is not None
        }
        assert len(report.prefix_events) == len(prefix_batches)
        assert report.prefix_hits + report.prefix_misses == len(report.prefix_events)
        for event in report.prefix_events:
            assert event.cycles_saved >= 0
            assert event.hit or event.cycles_saved == 0
        assert report.prefix_cycles_saved == sum(
            e.cycles_saved for e in report.prefix_events
        )

        # Eviction budget holds on every shard after the run.
        for shard in range(pool.n_shards):
            assert cache.resident_bytes(shard) <= budget

        # Shed requests never produce results.
        for rid in shed_ids:
            with pytest.raises(KeyError):
                engine.result(rid)
