"""Layers for the three evaluated network families.

Every layer supports two execution paths:

* :meth:`Module.forward` — autograd :class:`~repro.nn.autograd.Tensor`
  path, used for training;
* :meth:`Module.infer` — plain-numpy path that routes every GEMM and
  every nonlinear operation through a swappable *backend*
  (:mod:`repro.nn.executor`), which is how the same trained model runs
  exactly (float), CPWL+INT16 (the Table III evaluation) or on the full
  systolic-array model.

The test suite checks ``infer(x, FloatBackend())`` matches
``forward(Tensor(x))`` to float precision for every layer.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.nn import functional as F
from repro.nn.autograd import Tensor


class Module:
    """Base class: parameter discovery, mode switching, call sugar."""

    def __init__(self) -> None:
        self.training = True

    def parameters(self) -> List[Tensor]:
        """All trainable tensors of this module and its children."""
        params: List[Tensor] = []
        for value in self.__dict__.values():
            if isinstance(value, Tensor) and value.requires_grad:
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
        return params

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self) -> "Module":
        self._set_training(True)
        return self

    def eval(self) -> "Module":
        self._set_training(False)
        return self

    def _set_training(self, flag: bool) -> None:
        self.training = flag
        for value in self.__dict__.values():
            if isinstance(value, Module):
                value._set_training(flag)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_training(flag)

    def forward(self, x: Tensor) -> Tensor:
        raise NotImplementedError

    def infer(self, x: np.ndarray, backend) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)


def _kaiming(shape: Sequence[int], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


class Linear(Module):
    """Affine layer ``y = x W^T + b`` (GEMM on the array)."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(
            _kaiming((out_features, in_features), in_features, rng),
            requires_grad=True,
        )
        self.bias = Tensor(np.zeros(out_features), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        return x @ self.weight.transpose() + self.bias

    def infer(self, x: np.ndarray, backend) -> np.ndarray:
        return backend.linear(x, self.weight.data, self.bias.data)


class Conv2d(Module):
    """2-D convolution executed as im2col + GEMM."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
    ):
        super().__init__()
        self.stride = stride
        self.padding = padding
        self.kernel = kernel
        fan_in = in_channels * kernel * kernel
        self.weight = Tensor(
            _kaiming((out_channels, in_channels, kernel, kernel), fan_in, rng),
            requires_grad=True,
        )
        self.bias = Tensor(np.zeros(out_channels), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, self.stride, self.padding)

    def infer(self, x: np.ndarray, backend) -> np.ndarray:
        n = x.shape[0]
        f = self.weight.shape[0]
        w_mat = self.weight.data.reshape(f, -1)
        out, (out_h, out_w) = backend.conv_cols(
            x, self.kernel, self.stride, self.padding, w_mat, self.bias.data
        )
        return out.reshape(n, out_h, out_w, f).transpose(0, 3, 1, 2)


class BatchNorm2d(Module):
    """Batch normalization over (N, H, W) per channel.

    Training uses batch statistics and updates running estimates; at
    inference the running statistics are folded into a per-channel
    affine, which the backend executes as a single MHP (the reason
    batchnorm appears in Fig. 1's op mix yet costs ONE-SA no dedicated
    unit).
    """

    def __init__(self, channels: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.momentum = momentum
        self.gamma = Tensor(np.ones(channels), requires_grad=True)
        self.beta = Tensor(np.zeros(channels), requires_grad=True)
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mean = x.mean(axis=(0, 2, 3), keepdims=True)
            var = ((x - mean) * (x - mean)).mean(axis=(0, 2, 3), keepdims=True)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean
                + self.momentum * mean.data.reshape(-1)
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var
                + self.momentum * var.data.reshape(-1)
            )
        else:
            mean = Tensor(self.running_mean.reshape(1, -1, 1, 1))
            var = Tensor(self.running_var.reshape(1, -1, 1, 1))
        inv_std = (var + self.eps) ** -0.5
        normed = (x - mean) * inv_std
        return normed * self.gamma.reshape(1, -1, 1, 1) + self.beta.reshape(
            1, -1, 1, 1
        )

    def folded_affine(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-channel ``(scale, shift)`` with running stats folded in."""
        scale = self.gamma.data / np.sqrt(self.running_var + self.eps)
        shift = self.beta.data - self.running_mean * scale
        return scale, shift

    def infer(self, x: np.ndarray, backend) -> np.ndarray:
        return backend.batchnorm_stats(
            x,
            self.gamma.data,
            self.beta.data,
            self.running_mean,
            self.running_var,
            eps=self.eps,
            channel_axis=1,
        )


class LayerNorm(Module):
    """Layer normalization over the last axis."""

    def __init__(self, features: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.gamma = Tensor(np.ones(features), requires_grad=True)
        self.beta = Tensor(np.zeros(features), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered * (var + self.eps) ** -0.5
        return normed * self.gamma + self.beta

    def infer(self, x: np.ndarray, backend) -> np.ndarray:
        return backend.layernorm(
            x, self.gamma.data, self.beta.data, eps=self.eps
        )


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def infer(self, x: np.ndarray, backend) -> np.ndarray:
        return backend.relu(x)


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.gelu()

    def infer(self, x: np.ndarray, backend) -> np.ndarray:
        return backend.gelu(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()

    def infer(self, x: np.ndarray, backend) -> np.ndarray:
        return backend.tanh(x)


class MaxPool2d(Module):
    def __init__(self, kernel: int = 2, stride: Optional[int] = None):
        super().__init__()
        self.kernel = kernel
        self.stride = stride or kernel

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel, self.stride)

    def infer(self, x: np.ndarray, backend) -> np.ndarray:
        # Pooling is a comparison tree, not arithmetic; it runs on the
        # scalar path in both the paper's baseline and ONE-SA.
        return F.max_pool2d(Tensor(x), self.kernel, self.stride).data


class AvgPool2d(Module):
    def __init__(self, kernel: int = 2, stride: Optional[int] = None):
        super().__init__()
        self.kernel = kernel
        self.stride = stride or kernel

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel, self.stride)

    def infer(self, x: np.ndarray, backend) -> np.ndarray:
        return F.avg_pool2d(Tensor(x), self.kernel, self.stride).data


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)

    def infer(self, x: np.ndarray, backend) -> np.ndarray:
        return x.reshape(x.shape[0], -1)


class Sequential(Module):
    def __init__(self, *modules: Module):
        super().__init__()
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x

    def infer(self, x: np.ndarray, backend) -> np.ndarray:
        for module in self.modules:
            x = module.infer(x, backend)
        return x


class Embedding(Module):
    """Token embedding table."""

    def __init__(self, vocab: int, dim: int, rng: np.random.Generator):
        super().__init__()
        self.table = Tensor(rng.normal(0, 0.1, size=(vocab, dim)), requires_grad=True)

    def forward_indices(self, indices: np.ndarray) -> Tensor:
        return F.embedding_lookup(self.table, indices)

    def infer_indices(self, indices: np.ndarray) -> np.ndarray:
        return self.table.data[np.asarray(indices)]


class MultiHeadSelfAttention(Module):
    """Multi-head self-attention with softmax on the array.

    Shapes: input ``(N, T, D)``; ``heads`` must divide ``D``.  The
    inference path charges four GEMMs (Q, K, V, output projections), the
    two attention batched matmuls, and one softmax per head-row — the
    exact op mix the BERT workload descriptor counts.

    With ``causal=True`` position ``i`` attends only to positions
    ``<= i``.  The inference path enforces the mask *structurally*: row
    ``i``'s softmax runs over its first ``i + 1`` scores only and the
    remaining attention weights are exact zeros, so every output row is
    a function of the tokens at or before it — never of the sequence
    length or of later tokens.  That suffix-independence is what makes
    cached-prefix reuse (:meth:`infer_suffix`) bit-identical to cold
    execution.  The training path uses the conventional additive
    ``-inf``-style mask, which matches only to float precision.
    """

    #: Additive pre-softmax bias of masked scores on the training path.
    _MASK_BIAS = -1e9

    def __init__(
        self, dim: int, heads: int, rng: np.random.Generator, causal: bool = False
    ):
        super().__init__()
        if dim % heads:
            raise ValueError(f"heads ({heads}) must divide dim ({dim})")
        self.dim = dim
        self.heads = heads
        self.head_dim = dim // heads
        self.causal = bool(causal)
        self.q_proj = Linear(dim, dim, rng)
        self.k_proj = Linear(dim, dim, rng)
        self.v_proj = Linear(dim, dim, rng)
        self.out_proj = Linear(dim, dim, rng)

    def _split(self, x: Tensor, n: int, t: int) -> Tensor:
        return x.reshape(n, t, self.heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor) -> Tensor:
        n, t, _ = x.shape
        q = self._split(self.q_proj(x), n, t)
        k = self._split(self.k_proj(x), n, t)
        v = self._split(self.v_proj(x), n, t)
        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (q @ k.transpose(0, 1, 3, 2)) * scale
        if self.causal:
            bias = np.triu(np.full((t, t), self._MASK_BIAS), k=1)
            scores = scores + Tensor(bias)
        attn = scores.softmax(axis=-1)
        ctx = attn @ v  # (N, H, T, hd)
        merged = ctx.transpose(0, 2, 1, 3).reshape(n, t, self.dim)
        return self.out_proj(merged)

    def infer(self, x: np.ndarray, backend, kv_tap=None) -> np.ndarray:
        """Full-sequence inference; optionally captures K/V on ``kv_tap``.

        ``kv_tap`` (see :class:`repro.nn.executor.KVTap`) receives the
        merged ``(N, T, D)`` key/value activations of this layer before
        the head split — the arrays a prefix cache retains.
        """
        n, t, _ = x.shape
        q = self.q_proj.infer(x, backend)
        k = self.k_proj.infer(x, backend)
        v = self.v_proj.infer(x, backend)
        if kv_tap is not None:
            kv_tap.capture(k, v)
        return self._attend(q, k, v, backend, row_offset=0)

    def infer_suffix(
        self,
        x_suffix: np.ndarray,
        k_prefix: np.ndarray,
        v_prefix: np.ndarray,
        backend,
    ) -> np.ndarray:
        """Incremental attention over the suffix rows of a causal layer.

        ``x_suffix`` holds the hidden rows of positions ``P..T-1``;
        ``k_prefix``/``v_prefix`` are this layer's cached ``(P, D)``
        key/value rows of the shared prompt.  Because the causal mask
        makes K/V rows functions of their own prefix only, concatenating
        the cached rows with freshly projected suffix rows reproduces
        the cold path's operands exactly — every suffix output row is
        bit-identical to its cold counterpart while the prefix rows'
        GEMM work is skipped entirely.
        """
        out, _, _ = self.infer_suffix_kv(x_suffix, k_prefix, v_prefix, backend)
        return out

    def infer_suffix_kv(
        self,
        x_suffix: np.ndarray,
        k_prefix: np.ndarray,
        v_prefix: np.ndarray,
        backend,
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """:meth:`infer_suffix` that also returns the suffix K/V rows.

        ``(out, k_s, v_s)`` with ``k_s``/``v_s`` shaped ``(N, S, D)`` —
        exactly the rows a decode cache appends to stay losslessly
        aligned with a cold full-sequence pass.  ``k_prefix``/``v_prefix``
        may be shared ``(P, D)`` rows (prompt reuse) or per-sequence
        ``(N, P, D)`` caches (autoregressive decode).
        """
        if not self.causal:
            raise ValueError("prefix reuse requires a causal attention layer")
        n, _, _ = x_suffix.shape
        p = k_prefix.shape[-2]
        q = self.q_proj.infer(x_suffix, backend)
        k_s = self.k_proj.infer(x_suffix, backend)
        v_s = self.v_proj.infer(x_suffix, backend)
        k = np.concatenate([np.broadcast_to(k_prefix, (n, p, self.dim)), k_s], axis=1)
        v = np.concatenate([np.broadcast_to(v_prefix, (n, p, self.dim)), v_s], axis=1)
        return self._attend(q, k, v, backend, row_offset=p), k_s, v_s

    def decode_step(
        self,
        x_step: np.ndarray,
        k_cache: np.ndarray,
        v_cache: np.ndarray,
        backend,
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """One-token :meth:`infer_suffix_kv` (suffix length exactly 1)."""
        if x_step.shape[1] != 1:
            raise ValueError(
                f"decode_step takes one row per sequence, got {x_step.shape[1]}"
            )
        return self.infer_suffix_kv(x_step, k_cache, v_cache, backend)

    def _attend(
        self,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        backend,
        row_offset: int,
    ) -> np.ndarray:
        """Attention of ``R`` query rows (global positions ``row_offset``
        onward) against ``T`` key/value rows; merged output ``(N, R, D)``."""
        n, r, _ = q.shape
        t = k.shape[1]

        def split(a: np.ndarray) -> np.ndarray:
            rows = a.shape[1]
            return a.reshape(n, rows, self.heads, self.head_dim).transpose(0, 2, 1, 3)

        q, k, v = split(q), split(k), split(v)
        scale = 1.0 / np.sqrt(self.head_dim)
        scores = backend.matmul(q, k.transpose(0, 1, 3, 2)) * scale
        if self.causal:
            # Structural mask: one softmax per global position over its
            # first i+1 scores; weights past the diagonal are exact
            # zeros, so the context GEMM's masked terms contribute
            # nothing regardless of later tokens.
            attn = np.zeros_like(scores)
            for row in range(r):
                limit = row_offset + row + 1
                attn[:, :, row, :limit] = backend.softmax(
                    scores[:, :, row, :limit], axis=-1
                )
        else:
            attn = backend.softmax(scores, axis=-1)
        ctx = backend.matmul(attn, v)
        merged = ctx.transpose(0, 2, 1, 3).reshape(n, r, self.dim)
        return self.out_proj.infer(merged, backend)


class TransformerEncoderLayer(Module):
    """Post-norm encoder block: MHA + LayerNorm + GELU feed-forward.

    ``causal=True`` makes the attention sub-layer causal; everything
    else in the block (residuals, layernorms, the feed-forward) is
    already per-row, so the whole block then maps row ``i`` from rows
    ``<= i`` only — the property :meth:`infer_suffix` rides on.
    """

    def __init__(
        self,
        dim: int,
        heads: int,
        ff_dim: int,
        rng: np.random.Generator,
        causal: bool = False,
    ):
        super().__init__()
        self.attn = MultiHeadSelfAttention(dim, heads, rng, causal=causal)
        self.ln1 = LayerNorm(dim)
        self.fc1 = Linear(dim, ff_dim, rng)
        self.fc2 = Linear(ff_dim, dim, rng)
        self.ln2 = LayerNorm(dim)

    @property
    def causal(self) -> bool:
        return self.attn.causal

    def forward(self, x: Tensor) -> Tensor:
        x = self.ln1(x + self.attn(x))
        hidden = self.fc1(x).gelu()
        return self.ln2(x + self.fc2(hidden))

    def infer(self, x: np.ndarray, backend, kv_tap=None) -> np.ndarray:
        x = self.ln1.infer(x + self.attn.infer(x, backend, kv_tap=kv_tap), backend)
        hidden = backend.gelu(self.fc1.infer(x, backend))
        return self.ln2.infer(x + self.fc2.infer(hidden, backend), backend)

    def infer_suffix(
        self,
        x_suffix: np.ndarray,
        k_prefix: np.ndarray,
        v_prefix: np.ndarray,
        backend,
    ) -> np.ndarray:
        """The block's suffix rows, reusing this layer's cached K/V."""
        out, _, _ = self.infer_suffix_kv(x_suffix, k_prefix, v_prefix, backend)
        return out

    def infer_suffix_kv(
        self,
        x_suffix: np.ndarray,
        k_prefix: np.ndarray,
        v_prefix: np.ndarray,
        backend,
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """:meth:`infer_suffix` that also returns this layer's new K/V rows."""
        attn_out, k_s, v_s = self.attn.infer_suffix_kv(
            x_suffix, k_prefix, v_prefix, backend
        )
        x = self.ln1.infer(x_suffix + attn_out, backend)
        hidden = backend.gelu(self.fc1.infer(x, backend))
        out = self.ln2.infer(x + self.fc2.infer(hidden, backend), backend)
        return out, k_s, v_s

    def decode_step(
        self,
        x_step: np.ndarray,
        k_cache: np.ndarray,
        v_cache: np.ndarray,
        backend,
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """One-token block step against a per-sequence K/V cache."""
        if x_step.shape[1] != 1:
            raise ValueError(
                f"decode_step takes one row per sequence, got {x_step.shape[1]}"
            )
        return self.infer_suffix_kv(x_step, k_cache, v_cache, backend)


class GraphConv(Module):
    """GCN layer: ``H' = A_hat H W`` with the normalized adjacency.

    ``a_hat`` (dense, ``(V, V)``) is supplied per call since it belongs
    to the graph, not the layer.  Both matmuls are GEMMs on the array.
    """

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        super().__init__()
        self.linear = Linear(in_features, out_features, rng)

    def forward(self, h: Tensor, a_hat: np.ndarray) -> Tensor:
        return Tensor(a_hat) @ self.linear(h)

    def infer(self, h: np.ndarray, a_hat: np.ndarray, backend) -> np.ndarray:
        return backend.matmul(a_hat, self.linear.infer(h, backend))
