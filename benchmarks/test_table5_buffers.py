"""Bench E9 — Table V: buffer sizes of the Table IV design point.

The buffer geometry derived in SystolicConfig must reproduce the
published sizes and instance counts exactly.
"""

import pytest

from repro.evaluation.resource_sweep import format_table5, table5_buffer_sizes


def test_table5_buffer_sizes(benchmark, print_artifact):
    rows = benchmark(table5_buffer_sizes)
    print_artifact(format_table5())

    table = {r["buffer"]: r for r in rows}
    assert table["L3"]["size_kb"] == pytest.approx(0.28, abs=0.005)
    assert table["L3"]["count"] == 3
    assert table["L2"]["size_kb"] == pytest.approx(0.5)
    assert table["L2"]["count"] == 24
    assert table["PE"]["size_kb"] == pytest.approx(0.094, abs=0.001)
    assert table["PE"]["count"] == 64
    assert table["L1"]["size_kb"] == pytest.approx(0.031, abs=0.001)
    assert table["L1"]["count"] == 64
