"""Execution trace of operations issued to the array.

The trace records one event per architecture-level operation (GEMM, IPF,
MHP, preload) with its cycle breakdown, so utilization, the Fig. 1-style
op mix and the energy accounting can all be derived from a single run.

Aggregates (total cycles, cycles/ops per kind, cycles per label) are
maintained *streaming* on :meth:`Trace.record`, so consulting them is
O(1) in the number of recorded events — a long-lived serving process can
read ``total_cycles`` per request without re-scanning its history.

Label namespaces
----------------
A trace can attribute cycles to a *namespace* — e.g. the serving
engine's tenant executing the current batch — without retaining a
single event: :meth:`Trace.namespace` is a context manager that tags
every event recorded inside it, and the per-namespace aggregates
(:meth:`cycles_by_namespace`, and per-label within a namespace via
``cycles_by_label(namespace=...)``) are maintained streaming exactly
like the global ones.  Memory is bounded by
``distinct namespaces x distinct labels``, never by event count, so
aggregate-only retention and tenant attribution compose.

Retention modes
---------------
* ``retain_events=True`` (default) — every :class:`TraceEvent` stays in
  :attr:`Trace.events` for post-hoc inspection (the examples and the
  Fig.-1-style breakdowns want the full log).
* ``retain_events=True, max_events=N`` — keep only the most recent ``N``
  events; aggregates remain exact over the *whole* history.
* ``retain_events=False`` — aggregate-only: nothing is appended to
  ``events`` and memory stays constant no matter how many operations
  run.  The serving engine puts its shard arrays in this mode by
  default.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, Iterator, List, Optional

from repro.systolic.timing import CycleBreakdown


@dataclass(frozen=True)
class TraceEvent:
    """One operation executed by the array."""

    kind: str  # 'gemm' | 'mhp' | 'ipf' | 'preload'
    label: str
    cycles: int
    ops: int  # MACs for GEMM, elements for nonlinear events
    breakdown: Optional[CycleBreakdown] = None


class Trace:
    """Ordered event log with O(1) streaming aggregates.

    Parameters
    ----------
    retain_events:
        Keep the per-event log in :attr:`events`.  When False the trace
        is aggregate-only (bounded memory; ``events`` stays empty).
    max_events:
        With ``retain_events=True``, cap the retained log at the most
        recent ``max_events`` entries.  Aggregates always cover every
        event ever recorded, retained or not.
    """

    def __init__(
        self, retain_events: bool = True, max_events: Optional[int] = None
    ) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError(f"max_events must be positive or None, got {max_events}")
        self.retain_events = retain_events
        self.max_events = max_events
        self.events: "Deque[TraceEvent] | List[TraceEvent]" = (
            deque(maxlen=max_events) if max_events is not None else []
        )
        self._n_events = 0
        self._total_cycles = 0
        self._cycles_by_kind: Dict[str, int] = {}
        self._ops_by_kind: Dict[str, int] = {}
        self._cycles_by_label: Dict[str, int] = {}
        self._namespace: Optional[str] = None
        self._cycles_by_namespace: Dict[str, int] = {}
        self._ns_cycles_by_label: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, event: TraceEvent) -> None:
        """Account one event; append it to the log if retention is on."""
        self._n_events += 1
        self._total_cycles += event.cycles
        kind = self._cycles_by_kind
        kind[event.kind] = kind.get(event.kind, 0) + event.cycles
        ops = self._ops_by_kind
        ops[event.kind] = ops.get(event.kind, 0) + event.ops
        label = self._cycles_by_label
        label[event.label] = label.get(event.label, 0) + event.cycles
        if self._namespace is not None:
            ns = self._cycles_by_namespace
            ns[self._namespace] = ns.get(self._namespace, 0) + event.cycles
            ns_labels = self._ns_cycles_by_label.setdefault(self._namespace, {})
            ns_labels[event.label] = ns_labels.get(event.label, 0) + event.cycles
        if self.retain_events:
            self.events.append(event)

    @contextmanager
    def namespace(self, name: str) -> Iterator["Trace"]:
        """Attribute events recorded inside the block to ``name``.

        Nested namespaces replace each other (the innermost wins), and
        recording outside any namespace touches only the global
        aggregates.  The serving engine wraps each batch execution in
        the owning tenant's namespace so aggregate-only traces can
        still attribute cycles per tenant.
        """
        previous = self._namespace
        self._namespace = name
        try:
            yield self
        finally:
            self._namespace = previous

    def configure(
        self,
        retain_events: Optional[bool] = None,
        max_events: "Optional[int] | str" = "unchanged",
    ) -> None:
        """Switch retention mode in place.

        Aggregates are untouched, and events already retained stay in
        the log (turning retention off only stops *future* appends —
        nothing a caller collected is destroyed; a tighter
        ``max_events`` trims to the most recent entries).  Omitted
        arguments keep their current setting; pass ``max_events=None``
        explicitly to lift an existing bound.
        """
        if retain_events is not None:
            self.retain_events = retain_events
        if max_events != "unchanged":
            if max_events is not None and max_events < 1:
                raise ValueError(
                    f"max_events must be positive or None, got {max_events}"
                )
            self.max_events = max_events
        existing: Iterable[TraceEvent] = self.events
        if self.max_events is not None:
            self.events = deque(existing, maxlen=self.max_events)
        else:
            self.events = list(existing)

    # ------------------------------------------------------------------
    # Aggregate views (O(1) / O(distinct keys), never O(events))
    # ------------------------------------------------------------------
    @property
    def total_cycles(self) -> int:
        return self._total_cycles

    def cycles_by_kind(self) -> Dict[str, int]:
        """Aggregate cycles per operation kind."""
        return dict(self._cycles_by_kind)

    def ops_by_kind(self) -> Dict[str, int]:
        """Aggregate op counts per operation kind."""
        return dict(self._ops_by_kind)

    def cycles_by_label(self, namespace: Optional[str] = None) -> Dict[str, int]:
        """Aggregate cycles per event label (e.g. per layer).

        With ``namespace``, only cycles recorded inside that
        :meth:`namespace` block are reported (empty dict for a
        namespace the trace has never seen).
        """
        if namespace is not None:
            return dict(self._ns_cycles_by_label.get(namespace, {}))
        return dict(self._cycles_by_label)

    def cycles_by_namespace(self) -> Dict[str, int]:
        """Aggregate cycles per namespace (see :meth:`namespace`)."""
        return dict(self._cycles_by_namespace)

    @property
    def events_recorded(self) -> int:
        """Events accounted since the last clear (retained or not)."""
        return self._n_events

    @property
    def events_retained(self) -> int:
        """Events currently held in the log."""
        return len(self.events)

    def clear(self) -> None:
        """Drop the log and zero every aggregate (retention mode kept)."""
        self.events.clear()
        self._n_events = 0
        self._total_cycles = 0
        self._cycles_by_kind.clear()
        self._ops_by_kind.clear()
        self._cycles_by_label.clear()
        self._cycles_by_namespace.clear()
        self._ns_cycles_by_label.clear()

    def __len__(self) -> int:
        """Number of events *recorded* (see :attr:`events_retained`)."""
        return self._n_events
