"""Multi-tenant batched inference serving on top of the (ONE-)SA simulator.

This subpackage turns the single-call simulator into a multi-request,
multi-tenant serving system:

* request/completion/shed records with tenant, priority and deadline
  fields (:mod:`repro.serving.request`);
* deterministic dynamic batching with max-batch-size and flush-timeout
  knobs (:mod:`repro.serving.batcher`) — co-pending requests of the
  same tenant and model are stacked so their GEMMs share tiles, which
  the vectorized :func:`repro.fixedpoint.fixed_matmul` executes in one
  call, bit-identical to per-request inference; the incremental
  :class:`~repro.serving.batcher.BatchAssembler` applies the same
  rules while requests keep arriving;
* tenant contracts — fair-share weight, strict priority, latency SLO,
  and admission control (queue-depth caps, deadline-doomed shedding)
  (:mod:`repro.serving.tenancy`);
* per-tenant queues with pluggable fairness policies (weighted
  round-robin, strict priority) driving a discrete-event scheduler
  loop that admits requests while batches are in flight
  (:mod:`repro.serving.scheduler`);
* the cluster placement API (:mod:`repro.serving.cluster`):
  :class:`~repro.serving.cluster.ClusterSpec` declares a pool of
  shards with possibly *heterogeneous* array design points, and a
  pluggable :class:`~repro.serving.cluster.PlacementPolicy` —
  round-robin (the backward-compatible default), least-loaded
  (occupancy-aware) or cost-aware (closed-form cycle-model finish-time
  estimates) — decides at batch-ready time which shard runs each
  batch, with per-array trace aggregation and per-tenant namespace
  attribution (:class:`~repro.serving.cluster.ClusterDispatcher`;
  :mod:`repro.serving.dispatcher` keeps the historical
  ``ShardedDispatcher`` name alive);
* KV-prefix reuse for transformer endpoints
  (:mod:`repro.serving.prefix_cache`): a
  :class:`~repro.serving.prefix_cache.PrefixCache` keyed on
  (tenant, model, prompt digest) retains per-layer K/V activations in
  the fixed-point domain under a per-shard byte budget (LRU eviction),
  a :class:`~repro.serving.prefix_cache.TransformerPrefixAdapter`
  runs hit batches suffix-only — bit-identical to cold execution, with
  the skipped cycles accounted in exact closed form — and
  :class:`~repro.serving.cluster.PrefixAffinePlacement` steers batches
  to the shard already holding their prompt;
* continuous-batching autoregressive decode
  (:mod:`repro.serving.generation`): generation requests prefill
  through the normal batch pipeline, then join an iteration-level
  decode pool whose batch is re-formed every step (finished sequences
  retire, freshly prefilled ones join), with per-step traced-cycle
  attribution and a tenant-scoped, byte-budgeted
  :class:`~repro.serving.prefix_cache.RadixKVCache` reusing the
  longest cached prefix of every prompt;
* the engine tying admission, scheduler, placement and shards together
  (:mod:`repro.serving.engine`), now fault-tolerant: per-shard
  circuit breakers (:class:`~repro.serving.cluster.ShardHealth`),
  deadline-aware batch retry with capped exponential backoff in
  simulated time, and re-placement of failed batches onto healthy
  shards — driven by a seeded, reproducible fault plan
  (:mod:`repro.serving.faults`);
* the elastic cluster runtime (:mod:`repro.serving.elastic`,
  :mod:`repro.serving.stats`), all off by default and regression-pinned
  bit-identical when off: look-ahead placement plans each scheduling
  round's whole ready set jointly
  (:class:`~repro.serving.cluster.LookaheadPlacement` list scheduling),
  work-stealing re-prices queued-but-unstarted batches at execution
  time — migrating them (and, when prefix affinity breaks, the cache
  *entry* through the fabric) off drifted or tripped shards — and an
  SLO-driven autoscaler grows/shrinks the live pool from windowed
  attainment and shed signals with hysteresis, priced by the hardware
  power model; every decision feeds from the per-shard stats
  descriptor tree and lands in the report's elastic section;
* a multi-worker serving front (:mod:`repro.serving.multiproc`):
  :func:`~repro.serving.multiproc.serve_multiproc` partitions the
  declared cluster into contiguous shard blocks, runs one engine
  process per block over a shared :class:`repro.store.FileStore`
  cache fabric (plans, prompts and calibration cross the process
  boundary through it), and merges the per-worker reports into one
  fleet view with exact counter sums — with worker supervision:
  dead workers are detected by exit code and either restarted or
  their requests redistributed onto surviving shard blocks
  (:class:`~repro.serving.multiproc.WorkerFailedError` when
  supervision is off);
* serving-level reporting — latency percentiles, throughput,
  cycles/request, per-shard utilization and the placement-decision
  log, per-tenant SLO attainment and shed accounting
  (:mod:`repro.serving.report`).

See ``examples/serving_demo.py``, ``examples/multitenant_demo.py`` and
``examples/heterogeneous_demo.py`` for end-to-end tours, and
``docs/serving.md`` for the operator guide.
"""

from repro.serving.batcher import Batch, BatchAssembler, DynamicBatcher
from repro.serving.cluster import (
    CALIBRATION_NAMESPACE,
    BatchProfile,
    BreakerConfig,
    BreakerTransition,
    CalibratingCostModel,
    ClusterDispatcher,
    ClusterSpec,
    CostAwarePlacement,
    LeastLoadedPlacement,
    LookaheadPlacement,
    PlacementDecision,
    PlacementPolicy,
    PrefixAffinePlacement,
    RoundRobinPlacement,
    ShardHealth,
    ShardSpec,
    ShardView,
    config_from_dict,
    config_to_dict,
    load_calibration,
    make_placement_policy,
    save_calibration,
    workload_cost_model,
)
from repro.serving.dispatcher import ShardedDispatcher
from repro.serving.elastic import ElasticConfig, ScalingEvent, StealEvent
from repro.serving.engine import InferenceEngine, ModelEndpoint
from repro.serving.generation import (
    ActiveSequence,
    DecodeStepRecord,
    GenerationAdapter,
)
from repro.serving.faults import (
    FabricFault,
    FaultPlan,
    FaultRecord,
    RetryPolicy,
    ShardCrash,
    ShardSlowdown,
    WorkerDeath,
    corrupt_fabric_entries,
)
from repro.serving.multiproc import (
    ModelSpec,
    MultiprocResult,
    WorkerConfig,
    WorkerFailedError,
    merge_reports,
    partition_cluster,
    serve_multiproc,
)
from repro.serving.prefix_cache import (
    PREFIX_FABRIC_NAMESPACE,
    PrefixCache,
    PrefixEntry,
    PrefixEvent,
    RadixKVCache,
    RadixPrefixIndex,
    TransformerPrefixAdapter,
)
from repro.serving.report import ServingReport
from repro.serving.request import (
    CompletedRequest,
    FailureRecord,
    GenerationRequest,
    InferenceRequest,
    ShedRecord,
)
from repro.serving.scheduler import (
    SchedulingPolicy,
    StrictPriority,
    TenantScheduler,
    WeightedRoundRobin,
)
from repro.serving.stats import ShardStats, cluster_desc, render_cluster_desc
from repro.serving.tenancy import DEFAULT_TENANT, TenantConfig, TenantRegistry

__all__ = [
    "Batch",
    "BatchAssembler",
    "DynamicBatcher",
    "BatchProfile",
    "CalibratingCostModel",
    "ClusterDispatcher",
    "ClusterSpec",
    "CostAwarePlacement",
    "LeastLoadedPlacement",
    "LookaheadPlacement",
    "PlacementDecision",
    "PlacementPolicy",
    "RoundRobinPlacement",
    "ShardSpec",
    "ShardView",
    "make_placement_policy",
    "workload_cost_model",
    "PrefixAffinePlacement",
    "config_to_dict",
    "config_from_dict",
    "CALIBRATION_NAMESPACE",
    "save_calibration",
    "load_calibration",
    "BreakerConfig",
    "BreakerTransition",
    "ShardHealth",
    "FabricFault",
    "FaultPlan",
    "FaultRecord",
    "RetryPolicy",
    "ShardCrash",
    "ShardSlowdown",
    "WorkerDeath",
    "corrupt_fabric_entries",
    "ModelSpec",
    "MultiprocResult",
    "WorkerConfig",
    "WorkerFailedError",
    "merge_reports",
    "partition_cluster",
    "serve_multiproc",
    "PREFIX_FABRIC_NAMESPACE",
    "PrefixCache",
    "PrefixEntry",
    "PrefixEvent",
    "RadixKVCache",
    "RadixPrefixIndex",
    "TransformerPrefixAdapter",
    "ShardedDispatcher",
    "ElasticConfig",
    "ScalingEvent",
    "StealEvent",
    "ShardStats",
    "cluster_desc",
    "render_cluster_desc",
    "InferenceEngine",
    "ModelEndpoint",
    "ActiveSequence",
    "DecodeStepRecord",
    "GenerationAdapter",
    "ServingReport",
    "CompletedRequest",
    "FailureRecord",
    "GenerationRequest",
    "InferenceRequest",
    "ShedRecord",
    "SchedulingPolicy",
    "StrictPriority",
    "TenantScheduler",
    "WeightedRoundRobin",
    "DEFAULT_TENANT",
    "TenantConfig",
    "TenantRegistry",
]
