"""Design-space exploration: resources, power and Pareto frontiers.

Sweeps the PE-grid × MACs-per-PE space the paper explores in Figs. 9
and 10: prints per-design resources (with a Virtex-7 fit check), the
latency/power scatter for linear and nonlinear computation, and the
Pareto frontiers — ending with the paper's recommended design choice.

    python examples/design_space_exploration.py
"""

from repro.evaluation.pareto_sweep import figure10_pareto
from repro.evaluation.reporting import format_table
from repro.hardware import VIRTEX7_XC7VX485T, power_watts, total_resources
from repro.systolic.config import SystolicConfig


def main() -> None:
    rows = []
    for dim in (2, 4, 8, 16):
        for macs in (4, 16, 32):
            config = SystolicConfig(pe_rows=dim, pe_cols=dim, macs_per_pe=macs)
            res = total_resources(config)
            fits = VIRTEX7_XC7VX485T.fits(res)
            rows.append([
                f"{dim}x{dim}x{macs}",
                int(res.lut),
                int(res.ff),
                int(res.dsp),
                int(res.bram),
                f"{power_watts(config):.2f}",
                "yes" if fits else "NO",
            ])
    print(format_table(
        ["design", "LUT", "FF", "DSP", "BRAM", "power(W)", "fits XC7VX485T"],
        rows,
        title="ONE-SA design space (Fig. 9 view + device fit)",
    ))

    for mode in ("linear", "nonlinear"):
        sweep = figure10_pareto(mode, matrix_dims=(128,))
        front = sweep[128]["front"]
        rows = [
            [p.label, f"{p.latency_s * 1e6:.2f}", f"{p.power_w:.2f}"]
            for p in sorted(front, key=lambda p: p.latency_s)
        ]
        print("\n" + format_table(
            ["design", "latency (us)", "power (W)"],
            rows,
            title=f"Pareto frontier, {mode} 128x128 (Fig. 10 view)",
        ))

    print(
        "\nRecommended design point (paper, Section V-D): 8x8 PEs with 16 "
        "MACs per PE\n— on the Pareto frontier for linear computation, "
        "near-optimal for nonlinear,\nand comfortably inside the Virtex-7 "
        "XC7VX485T."
    )


if __name__ == "__main__":
    main()
