"""Bench E6 — Fig. 9: resource consumption across the design space.

Reproduced claims:

* LUT, FF and DSP grow linearly with the PE count; BRAM grows much
  more slowly;
* doubling MACs doubles DSPs, grows FFs by ~2.6–53.8%, barely moves
  LUTs, and leaves BRAM unchanged.
"""

import numpy as np
import pytest

from repro.evaluation.reporting import format_table
from repro.evaluation.resource_sweep import figure9_resource_sweep


def test_fig9_resources(benchmark, print_artifact):
    rows = benchmark(figure9_resource_sweep)
    headers = ["n_pes", "macs", "lut", "ff", "dsp", "bram"]
    print_artifact(
        format_table(
            headers,
            [[r[h] for h in headers] for r in rows],
            title="Fig. 9 resource sweep (ONE-SA)",
        )
    )

    by = {(r["n_pes"], r["macs"]): r for r in rows}

    # Linear growth in PEs at fixed MACs (16): 4x PEs -> ~4x LUT/FF/DSP.
    for resource in ("lut", "ff", "dsp"):
        ratio = by[(256, 16)][resource] / by[(64, 16)][resource]
        assert 2.5 < ratio < 5.5, resource
    # BRAM grows much more slowly than the PE count.
    bram_ratio = by[(256, 16)]["bram"] / by[(16, 16)]["bram"]
    assert bram_ratio < 4.0

    # MAC doubling at fixed PEs (64): DSP exactly doubles.
    assert by[(64, 32)]["dsp"] == 2 * by[(64, 16)]["dsp"]
    # FF growth inside the paper's 2.6%-53.8% band.
    for m in (2, 4, 8, 16):
        growth = by[(64, 2 * m)]["ff"] / by[(64, m)]["ff"] - 1.0
        assert 0.02 <= growth <= 0.538, m
    # LUTs move only marginally (16% over a 16x MAC range, against the
    # 16x DSP growth); BRAM not at all.
    assert by[(64, 32)]["lut"] / by[(64, 2)]["lut"] < 1.25
    assert by[(64, 32)]["bram"] == by[(64, 2)]["bram"]
