"""Processing element micro-architecture (Fig. 7).

A conventional PE receives an input operand from its west neighbour and
a weight operand from its north neighbour, performs a multi-MAC
multiply-accumulate into its multi-layer accumulator, and forwards both
operands onward.  ONE-SA adds two control logics:

* **C1** — operand forwarding enable.  Active in GEMM mode and in
  transmission PEs; deactivated in computation PEs during MHP so
  operands are consumed locally (they have no reuse).
* **C2** — local compute enable.  Active in GEMM mode and in computation
  PEs; deactivated in transmission PEs, which merely register and pass
  data.

The cycle-level simulator (:mod:`repro.systolic.cycle_sim`) drives these
PEs; the closed-form timing model only needs their throughput constants.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.fixedpoint import QFormat, saturate
from repro.fixedpoint.arithmetic import accumulator_to_output


class PEMode(enum.Enum):
    """Operating mode selected by the C1/C2 control logics."""

    GEMM = "gemm"  # C1 on, C2 on: classic systolic behaviour
    COMPUTATION = "computation"  # C1 off, C2 on: diagonal MHP compute
    TRANSMISSION = "transmission"  # C1 on, C2 off: MHP operand routing


@dataclass
class PEStats:
    """Activity counters used for utilization and energy accounting."""

    mac_ops: int = 0
    forwards: int = 0
    active_cycles: int = 0
    idle_cycles: int = 0

    def utilization(self) -> float:
        total = self.active_cycles + self.idle_cycles
        return self.active_cycles / total if total else 0.0


@dataclass
class ProcessingElement:
    """One PE of the array, stepped by the cycle-level simulator.

    Parameters
    ----------
    row, col:
        Grid position (the MHP dataflow puts computation PEs on
        ``row == col``).
    macs:
        Parallel MAC lanes (``macs_per_pe`` of the design point).
    fmt:
        Datapath format; the accumulator is product-aligned int64.
    """

    row: int
    col: int
    macs: int
    fmt: QFormat
    mode: PEMode = PEMode.GEMM
    accumulator: np.ndarray = field(default=None)
    reg_input: Optional[np.ndarray] = None
    reg_weight: Optional[np.ndarray] = None
    output_buffer: List[np.ndarray] = field(default_factory=list)
    stats: PEStats = field(default_factory=PEStats)

    def __post_init__(self) -> None:
        if self.accumulator is None:
            self.accumulator = np.zeros(1, dtype=np.int64)

    # ------------------------------------------------------------------
    # Control logic
    # ------------------------------------------------------------------
    @property
    def c1_forward(self) -> bool:
        """Control logic C1: forward operands to neighbours."""
        return self.mode in (PEMode.GEMM, PEMode.TRANSMISSION)

    @property
    def c2_compute(self) -> bool:
        """Control logic C2: compute locally."""
        return self.mode in (PEMode.GEMM, PEMode.COMPUTATION)

    def configure(self, mode: PEMode) -> None:
        """Reconfigure the PE (the per-op mode switch of Section IV-B)."""
        self.mode = mode
        self.reset()

    def reset(self) -> None:
        """Clear registers and the accumulator between operations."""
        self.accumulator = np.zeros(1, dtype=np.int64)
        self.reg_input = None
        self.reg_weight = None
        self.output_buffer.clear()

    # ------------------------------------------------------------------
    # Cycle behaviour
    # ------------------------------------------------------------------
    def step(
        self,
        in_from_west: Optional[np.ndarray],
        in_from_north: Optional[np.ndarray],
    ) -> tuple[Optional[np.ndarray], Optional[np.ndarray]]:
        """Advance one cycle.

        Receives up to ``macs`` input lanes from the west and weight
        lanes from the north, optionally computes, and returns the
        operands to forward ``(to_east, to_south)`` — ``None`` when C1
        gates them off or nothing was registered.
        """
        forwarded = (None, None)
        if self.c1_forward:
            forwarded = (self.reg_input, self.reg_weight)
            if self.reg_input is not None or self.reg_weight is not None:
                self.stats.forwards += 1

        self.reg_input = in_from_west
        self.reg_weight = in_from_north

        if (
            self.c2_compute
            and self.reg_input is not None
            and self.reg_weight is not None
        ):
            a = np.asarray(self.reg_input, dtype=np.int64)
            b = np.asarray(self.reg_weight, dtype=np.int64)
            lanes = min(a.size, b.size, self.macs)
            partial = np.dot(a[:lanes], b[:lanes])
            self.stats.mac_ops += lanes
            self.stats.active_cycles += 1
            if self.mode is PEMode.COMPUTATION:
                # MHP: the multi-layer accumulator bypasses to the output
                # buffer — every pair of stream elements is one result.
                self.output_buffer.append(
                    accumulator_to_output(np.array([partial]), self.fmt)[0]
                )
            else:
                self.accumulator = self.accumulator + partial
        else:
            self.stats.idle_cycles += 1
        return forwarded

    def writeback(self) -> np.ndarray:
        """Drain the accumulator to an INT16 result (GEMM epilogue)."""
        return accumulator_to_output(self.accumulator, self.fmt)[0]
