"""Unit tests for the closed-form cycle model (Figs. 8/10 substrate)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.systolic.config import SystolicConfig
from repro.systolic.timing import (
    CycleBreakdown,
    effective_out_width,
    gemm_cycles,
    gemm_throughput_gops,
    gemm_utilization,
    nonlinear_cycles,
    nonlinear_throughput_gnfs,
    peak_gnfs,
    peak_gops,
)


def cfg(p=8, m=16, **kw):
    return SystolicConfig(pe_rows=p, pe_cols=p, macs_per_pe=m, **kw)


class TestCycleBreakdown:
    def test_total_sums_phases(self):
        bd = CycleBreakdown(fill=10, compute=100, drain=20, overhead=3)
        assert bd.total == 133

    def test_drain_fraction(self):
        bd = CycleBreakdown(fill=0, compute=50, drain=50)
        assert bd.drain_fraction == 0.5

    def test_seconds(self):
        bd = CycleBreakdown(fill=0, compute=250, drain=0)
        assert bd.seconds(250e6) == pytest.approx(1e-6)

    def test_merge(self):
        a = CycleBreakdown(1, 2, 3, 4)
        b = CycleBreakdown(10, 20, 30, 40)
        merged = a.merged(b)
        assert merged.total == a.total + b.total


class TestGemmCycles:
    def test_throughput_cliff_example(self):
        """Section V-C: 32x32 on 16x16 PEs is drain-dominated (~85%)."""
        bd = gemm_cycles(cfg(16, 16), 32, 32, 32)
        assert 0.80 <= bd.drain_fraction <= 0.90

    def test_large_matrix_high_utilization_at_paper_point(self):
        util = gemm_utilization(cfg(8, 16), 512, 512, 512)
        assert util > 0.95

    def test_big_array_drain_bound_on_512(self):
        """The 512-dim curve falls below max on the largest array (Fig. 8a)."""
        util = gemm_utilization(cfg(16, 16), 512, 512, 512)
        assert util < 0.7

    def test_cycles_scale_down_with_macs(self):
        slow = gemm_cycles(cfg(8, 2), 256, 256, 256).total
        fast = gemm_cycles(cfg(8, 16), 256, 256, 256).total
        assert fast < slow

    def test_more_pes_never_slower(self):
        small = gemm_cycles(cfg(4, 16), 256, 256, 256).total
        big = gemm_cycles(cfg(8, 16), 256, 256, 256).total
        assert big <= small

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            gemm_cycles(cfg(), 0, 4, 4)

    def test_peak_gops_formula(self):
        assert peak_gops(cfg(8, 16)) == pytest.approx(64 * 16 * 0.25)

    def test_throughput_below_peak(self):
        c = cfg(8, 16)
        for dim in (32, 128, 512):
            assert gemm_throughput_gops(c, dim, dim, dim) <= peak_gops(c) + 1e-9

    def test_out_width_defaults_to_quarter_rows(self):
        assert effective_out_width(cfg(16, 16)) == 4
        assert effective_out_width(cfg(8, 16)) == 2
        assert effective_out_width(cfg(2, 2)) == 1

    def test_out_width_override_clamped_to_rows(self):
        c = SystolicConfig(pe_rows=2, pe_cols=2, l3_out_width=16)
        assert effective_out_width(c) == 2

    @given(
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=1, max_value=300),
    )
    @settings(max_examples=60, deadline=None)
    def test_cycles_lower_bounded_by_ideal(self, m, k, n):
        c = cfg(4, 4)
        bd = gemm_cycles(c, m, k, n)
        ideal = m * k * n / c.macs_per_cycle
        assert bd.total >= ideal

    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=8, deadline=None)
    def test_cycles_monotone_in_k(self, scale):
        c = cfg(4, 4)
        base = gemm_cycles(c, 64, 32, 64).total
        bigger = gemm_cycles(c, 64, 32 * scale, 64).total
        assert bigger >= base


class TestNonlinearCycles:
    def test_requires_one_sa(self):
        sa = SystolicConfig(pe_rows=8, pe_cols=8, nonlinear_enabled=False)
        with pytest.raises(RuntimeError, match="nonlinear"):
            nonlinear_cycles(sa, 64, 64)

    def test_peak_gnfs_formula(self):
        assert peak_gnfs(cfg(8, 16)) == pytest.approx(8 * 16 / 2 * 0.25)

    def test_large_matrix_approaches_peak(self):
        c = cfg(8, 16)
        achieved = nonlinear_throughput_gnfs(c, 512, 512)
        assert achieved > 0.95 * peak_gnfs(c)

    def test_small_matrix_cliff(self):
        c = cfg(16, 32)
        achieved = nonlinear_throughput_gnfs(c, 32, 32)
        assert achieved < 0.5 * peak_gnfs(c)

    def test_macs_increase_nonlinear_throughput(self):
        """Fig. 8(b): MAC count matters for nonlinear throughput."""
        low = nonlinear_throughput_gnfs(cfg(8, 2), 256, 256)
        high = nonlinear_throughput_gnfs(cfg(8, 16), 256, 256)
        assert high > 2 * low

    def test_standalone_ipf_charged(self):
        fused = nonlinear_cycles(cfg(), 128, 128, fused_ipf=True).total
        standalone = nonlinear_cycles(cfg(), 128, 128, fused_ipf=False).total
        assert standalone > fused

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            nonlinear_cycles(cfg(), 0, 8)

    @given(st.integers(min_value=1, max_value=512), st.integers(min_value=1, max_value=64))
    @settings(max_examples=40, deadline=None)
    def test_nonlinear_cycles_lower_bounded(self, m, n):
        c = cfg(4, 8)
        bd = nonlinear_cycles(c, m, n)
        ideal = m * n / c.mhp_elements_per_cycle
        assert bd.total >= ideal
