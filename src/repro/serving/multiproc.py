"""Multi-worker serving over one cluster and a shared cache fabric.

One :class:`~repro.serving.engine.InferenceEngine` is single-process by
design — the discrete-event loop, the batcher and the placement policy
all mutate one pool's state.  This module scales the serving front
*out* instead of up: the declared :class:`~repro.serving.cluster.ClusterSpec`
is partitioned into contiguous shard blocks, one worker process runs a
full engine over each block, and the workers share a cache **fabric** —
a :class:`~repro.store.FileStore` every worker mounts as the second
tier of a :class:`~repro.store.TieredStore`:

* GEMM/MHP **plan caches** and the approximator table namespace write
  through to the fabric, so a layer shape planned by one worker is a
  fabric hit (not a rebuild) everywhere else;
* the **prefix cache** writes computed prompts through and promotes
  fabric hits onto the local shard, so one worker's cold pass serves
  every other worker's first request for that prompt;
* **calibration** snapshots persist under
  :data:`~repro.serving.cluster.CALIBRATION_NAMESPACE`, so a worker
  (or a later run) prices placements from observations the fleet has
  already made.

Everything a worker needs crosses the process boundary as one
picklable :class:`WorkerConfig`; models cross as :class:`ModelSpec`
(factory + kwargs, rebuilt inside the worker) because live model
objects and engines do not pickle.  Workers return their
:class:`~repro.serving.report.ServingReport`; :func:`merge_reports`
re-maps worker-local shard indices onto the global cluster numbering
and merges the logs so the fleet-level invariants hold exactly:
merged ``tenant_cycles`` / ``shard_cycles`` / shed counts are the
element-wise sums of the per-worker reports.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.serving.cluster import (
    CALIBRATION_NAMESPACE,
    ClusterSpec,
    save_calibration,
)
from repro.serving.engine import InferenceEngine
from repro.serving.prefix_cache import PrefixCache, TransformerPrefixAdapter
from repro.serving.report import ServingReport
from repro.serving.tenancy import TenantConfig
from repro.store import (
    FileStore,
    InProcessLRU,
    StoreConfig,
    TieredStore,
    get_store,
    set_store,
)


# ---------------------------------------------------------------------------
# Crossing the process boundary
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ModelSpec:
    """A model endpoint described by construction, not by instance.

    Workers rebuild the model as ``factory(**kwargs)`` — the factory
    must be importable (a module-level class or function), and the
    kwargs picklable.  Deterministic factories (seeded weight init)
    give every worker bit-identical weights, which is what makes the
    shared prefix fabric lossless across processes.

    ``prefix_len`` opts the endpoint into KV-prefix reuse via a
    :class:`~repro.serving.prefix_cache.TransformerPrefixAdapter`
    built inside the worker.
    """

    name: str
    factory: Callable[..., object]
    kwargs: Dict[str, object] = field(default_factory=dict)
    prefix_len: Optional[int] = None


@dataclass(frozen=True)
class WorkerConfig:
    """Everything one worker process needs, in one picklable record."""

    index: int
    cluster: ClusterSpec
    models: Tuple[ModelSpec, ...]
    requests: Tuple[dict, ...]
    store_root: Optional[str] = None
    store_config: Optional[StoreConfig] = None
    shard_budget_bytes: int = 32 << 20
    max_batch_size: int = 8
    flush_timeout: float = 1e-3
    policy: str = "weighted_round_robin"
    placement: str = "round_robin"
    tenants: Tuple[TenantConfig, ...] = ()
    calibration_name: str = "default"


@dataclass(frozen=True)
class MultiprocResult:
    """Outcome of one :func:`serve_multiproc` run."""

    #: Per-worker reports, in worker order (shard indices worker-local).
    reports: Tuple[ServingReport, ...]
    #: The fleet view: shard indices re-mapped onto the cluster
    #: numbering, logs concatenated, counters summed exactly.
    merged: ServingReport
    #: The contiguous shard block each worker served.
    partitions: Tuple[ClusterSpec, ...]


# ---------------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------------
def partition_cluster(cluster: ClusterSpec, n_workers: int) -> List[ClusterSpec]:
    """Split a cluster into ``n_workers`` contiguous shard blocks.

    Blocks are as even as possible (sizes differ by at most one, larger
    blocks first) and preserve shard order, so global shard ``g`` of
    the declared cluster is worker-local shard ``g - offset`` of
    exactly one partition — the inverse of the re-mapping
    :func:`merge_reports` applies.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if n_workers > cluster.n_shards:
        raise ValueError(
            f"cannot split {cluster.n_shards} shard(s) across "
            f"{n_workers} workers; each worker needs at least one shard"
        )
    base, extra = divmod(cluster.n_shards, n_workers)
    partitions: List[ClusterSpec] = []
    start = 0
    for worker in range(n_workers):
        size = base + (1 if worker < extra else 0)
        partitions.append(ClusterSpec(cluster.shards[start : start + size]))
        start += size
    return partitions


# ---------------------------------------------------------------------------
# The worker body
# ---------------------------------------------------------------------------
def _worker_main(config: WorkerConfig) -> ServingReport:
    """Run one engine over one partition; the body of a worker process.

    Also callable in-process (the single-worker path and the tests use
    this): the process-global store is swapped for the worker's tiered
    store for the duration and restored afterwards, so an in-process
    call never leaks worker state into the caller's store.
    """
    previous = get_store()
    fabric: Optional[FileStore] = None
    try:
        if config.store_root is not None:
            fabric = FileStore(config.store_root)
            set_store(TieredStore(InProcessLRU(), fabric))
        else:
            set_store(None)  # a fresh default InProcessLRU
        if config.store_config is not None:
            config.store_config.apply()

        wants_prefix = any(spec.prefix_len is not None for spec in config.models)
        prefix_cache = (
            PrefixCache(config.shard_budget_bytes, fabric=fabric)
            if wants_prefix
            else None
        )
        engine = InferenceEngine(
            config.cluster.build(),
            max_batch_size=config.max_batch_size,
            flush_timeout=config.flush_timeout,
            policy=config.policy,
            placement=config.placement,
            tenants=config.tenants,
            prefix_cache=prefix_cache,
        )
        for spec in config.models:
            model = spec.factory(**dict(spec.kwargs))
            adapter = (
                TransformerPrefixAdapter(model, spec.prefix_len)
                if spec.prefix_len is not None and prefix_cache is not None
                else None
            )
            engine.register(spec.name, model, prefix_adapter=adapter)

        if fabric is not None:
            state = fabric.get(CALIBRATION_NAMESPACE, config.calibration_name)
            if state is not None:
                engine.calibrator.load_dict(state)

        report = engine.run(request_source=list(config.requests))

        if fabric is not None:
            save_calibration(
                engine.calibrator, fabric, name=config.calibration_name
            )
        return report
    finally:
        set_store(previous)


# ---------------------------------------------------------------------------
# The front
# ---------------------------------------------------------------------------
def serve_multiproc(
    cluster: ClusterSpec,
    models: Sequence[ModelSpec],
    requests: Sequence[dict],
    n_workers: int = 2,
    store_root: Optional[str] = None,
    store_config: Optional[StoreConfig] = None,
    shard_budget_bytes: int = 32 << 20,
    max_batch_size: int = 8,
    flush_timeout: float = 1e-3,
    policy: str = "weighted_round_robin",
    placement: str = "round_robin",
    tenants: Sequence[TenantConfig] = (),
) -> MultiprocResult:
    """Serve ``requests`` with ``n_workers`` engine processes.

    The cluster splits into contiguous shard blocks
    (:func:`partition_cluster`), requests round-robin over workers
    (``requests[i::n_workers]``, preserving each worker's arrival
    order), and — when ``store_root`` is given — every worker mounts
    the same :class:`~repro.store.FileStore` fabric under its tiered
    store, sharing plans, prompts and calibration across the fleet.

    ``requests`` is an arrival-sorted sequence of request dicts
    (:meth:`~repro.serving.engine.InferenceEngine.submit` keywords:
    ``model``, ``inputs``, optionally ``arrival``/``tenant``/
    ``priority``/``deadline``).  Worker processes fork on POSIX;
    ``n_workers=1`` runs in-process (no fork), which is also the
    fallback the tests exercise for coverage.

    Returns per-worker reports plus the merged fleet report; merged
    counters are exact sums of the per-worker ones (see
    :func:`merge_reports`).
    """
    partitions = partition_cluster(cluster, n_workers)
    model_specs = tuple(models)
    configs = [
        WorkerConfig(
            index=worker,
            cluster=partitions[worker],
            models=model_specs,
            requests=tuple(requests[worker::n_workers]),
            store_root=store_root,
            store_config=store_config,
            shard_budget_bytes=shard_budget_bytes,
            max_batch_size=max_batch_size,
            flush_timeout=flush_timeout,
            policy=policy,
            placement=placement,
            tenants=tuple(tenants),
        )
        for worker in range(n_workers)
    ]
    if n_workers == 1:
        reports = [_worker_main(configs[0])]
    else:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover — non-POSIX fallback
            ctx = multiprocessing.get_context()
        with ctx.Pool(processes=n_workers) as pool:
            reports = pool.map(_worker_main, configs)
    merged = merge_reports(reports, partitions)
    return MultiprocResult(
        reports=tuple(reports), merged=merged, partitions=tuple(partitions)
    )


# ---------------------------------------------------------------------------
# Merging
# ---------------------------------------------------------------------------
def merge_reports(
    reports: Sequence[ServingReport], partitions: Sequence[ClusterSpec]
) -> ServingReport:
    """One fleet report from per-worker reports.

    Worker-local shard indices shift by the cumulative size of the
    preceding partitions, recovering the declared cluster's numbering.
    Counters merge without loss: ``tenant_cycles``, ``shard_cycles``
    and shed counts sum exactly; placement, shed and prefix-event logs
    concatenate in worker order; ``wall_seconds`` is the slowest
    worker (the fleet ran concurrently).  Request ids stay worker-local
    (each engine numbers from zero) — batch identity in the merged
    view rests on the now-globally-unique ``(shard, batch_index)``
    pairs, not on request ids.

    Per-worker ``cache_stats`` namespaces are qualified as
    ``worker<N>/<namespace>`` — each worker owns a private store (plus
    its view of the fabric), so same-named namespaces are distinct
    caches, not one cache to sum.
    """
    if len(reports) != len(partitions):
        raise ValueError(
            f"got {len(reports)} reports for {len(partitions)} partitions"
        )
    completed: List[object] = []
    placements: List[object] = []
    shed: List[object] = []
    prefix_events: List[object] = []
    shard_cycles: Dict[int, int] = {}
    shard_busy: Dict[int, float] = {}
    tenant_cycles: Dict[str, int] = {}
    tenants: Dict[str, TenantConfig] = {}
    cache_stats: Dict[str, Dict[str, int]] = {}
    wall_seconds = 0.0
    offset = 0
    for worker, (report, partition) in enumerate(zip(reports, partitions)):
        completed.extend(
            replace(record, shard=record.shard + offset)
            for record in report.completed
        )
        placements.extend(
            replace(decision, shard=decision.shard + offset)
            for decision in report.placements
        )
        prefix_events.extend(
            replace(event, shard=event.shard + offset)
            for event in report.prefix_events
        )
        shed.extend(report.shed)
        for shard, cycles in report.shard_cycles.items():
            shard_cycles[shard + offset] = (
                shard_cycles.get(shard + offset, 0) + cycles
            )
        for shard, busy in report.shard_busy.items():
            shard_busy[shard + offset] = shard_busy.get(shard + offset, 0.0) + busy
        for tenant, cycles in report.tenant_cycles.items():
            tenant_cycles[tenant] = tenant_cycles.get(tenant, 0) + cycles
        tenants.update(report.tenants)
        for namespace, stats in report.cache_stats.items():
            cache_stats[f"worker{worker}/{namespace}"] = stats
        wall_seconds = max(wall_seconds, report.wall_seconds)
        offset += partition.n_shards
    policy = reports[0].placement_policy if reports else "round_robin"
    return ServingReport(
        completed=tuple(completed),
        shard_cycles=shard_cycles,
        wall_seconds=wall_seconds,
        tenant_cycles=tenant_cycles,
        tenants=tenants,
        placements=tuple(placements),
        shed=tuple(shed),
        shard_busy=shard_busy,
        placement_policy=policy,
        prefix_events=tuple(prefix_events),
        cache_stats=cache_stats,
    )
