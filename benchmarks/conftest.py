"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one paper artifact (table or figure), prints
it in paper-like form, and asserts the reproduced *shape* claims.  Run
with ``pytest benchmarks/ --benchmark-only``.

Everything in this directory is auto-marked ``bench`` so the fast
tier-1 invocation (``pytest -q -m "not bench"``) skips it.
"""

from pathlib import Path

import pytest

_BENCH_DIR = Path(__file__).resolve().parent


def pytest_collection_modifyitems(items):
    for item in items:
        if Path(str(item.fspath)).resolve().parent == _BENCH_DIR:
            item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def print_artifact():
    """Print a regenerated artifact, visibly separated in the log."""

    def _print(text: str) -> None:
        print("\n" + "=" * 72)
        print(text)
        print("=" * 72)

    return _print
