"""FPGA cost models: resources, power, device limits, Pareto analysis.

The paper implements ONE-SA on a Xilinx Virtex-7 XC7VX485T via Vivado
HLS and reports BRAM/LUT/FF/DSP utilization (Tables I and II, Fig. 9)
and XPE power (Fig. 10, Table IV).  We replace synthesis with an
*analytic* model whose structure is derived from the published anchors:

* the per-PE and per-L3 costs reproduce Table I;
* the ONE-SA-over-SA delta is structural and exact —
  ``n_PEs × (2 LUT, 518 FF)`` for the control logics plus
  ``(2 BRAM, 847 LUT, 643 FF)`` for the extended output L3 — which
  reproduces every delta in Table II to the digit;
* the remaining fabric (L2 banks, interconnect, control) is interpolated
  from the Table II anchor totals.

Power is a static + per-resource dynamic model calibrated to the
Table IV operating point (7.61 W at 64 PEs × 16 MACs).
"""

from repro.hardware.resources import (
    ArrayResources,
    l3_resources,
    pe_resources,
    total_resources,
)
from repro.hardware.device import VIRTEX7_XC7VX485T, FPGADevice
from repro.hardware.power import power_watts
from repro.hardware.pareto import pareto_front

__all__ = [
    "ArrayResources",
    "pe_resources",
    "l3_resources",
    "total_resources",
    "FPGADevice",
    "VIRTEX7_XC7VX485T",
    "power_watts",
    "pareto_front",
]
