"""The user-facing systolic array.

:class:`SystolicArray` ties the microarchitecture modules together: it
executes GEMMs as single whole-operand ``fixed_matmul`` calls *costed*
by the output-stationary tile schedule (the per-tile loop is only the
pinned equivalence reference, :func:`~repro.systolic.gemm.execute_gemm_per_tile`),
and nonlinear operations as the IPF → rearrange → MHP event chain, all
bit-accurate in the configured fixed-point format and with cycle
accounting recorded in an execution trace.

Typical use::

    from repro.systolic import SystolicArray, ONE_SA_PAPER_CONFIG

    array = SystolicArray(ONE_SA_PAPER_CONFIG)
    c = array.matmul(a, b)                    # float in, float out
    y = array.apply_nonlinear("gelu", x, granularity=0.25)
    print(array.trace.cycles_by_kind())

Hot-path design (the serving engine's per-request accounting rides on
it):

* GEMM plans come from the bounded LRU in :mod:`repro.systolic.gemm`
  and functional execution is one whole-operand ``fixed_matmul`` —
  tile geometry stays analytic metadata on the schedule;
* batched (stacked) GEMMs execute as a single N-D ``fixed_matmul``
  with the per-pair trace events synthesized from the closed-form
  cycle model (:meth:`gemm_raw_batched`);
* the data-rearrange pass on the nonlinear path is metadata-only: its
  relocation cost rides the MHP event (no separate trace entry, as in
  the seed; :func:`repro.systolic.rearrange.rearrange_cycles` gives
  the isolated closed form) and the actual interleaved streams are
  only built on request (``materialize_streams=True``, used by the
  dataflow tests);
* trace aggregates (:attr:`total_cycles`, utilization) are maintained
  streaming, so consulting them is O(1) regardless of history length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.nonlinear_ops import get_approximator
from repro.fixedpoint import dequantize, fixed_matmul, quantize
from repro.systolic.addressing import DataAddressing
from repro.systolic.buffers import build_hierarchy
from repro.systolic.config import ONE_SA_PAPER_CONFIG, SystolicConfig
from repro.systolic.gemm import GemmSchedule, execute_gemm, plan_gemm
from repro.systolic.mhp_dataflow import MHPSchedule, execute_mhp
from repro.systolic.rearrange import rearrange_for_mhp
from repro.systolic.timing import CycleBreakdown, effective_out_width
from repro.systolic.trace import Trace, TraceEvent


@dataclass(frozen=True)
class ExecutionResult:
    """Result of one operation on the array."""

    kind: str
    raw: np.ndarray
    breakdown: CycleBreakdown
    schedule: object = None
    streams: object = None  # RearrangedOperands when materialized

    @property
    def cycles(self) -> int:
        return self.breakdown.total


class SystolicArray:
    """Functional + cycle-accounted model of one (ONE-)SA instance.

    Parameters
    ----------
    config:
        The design point.  Nonlinear operations require
        ``config.nonlinear_enabled`` (the ONE-SA datapath); a plain SA
        configuration raises on them, mirroring real hardware.
    retain_trace_events, max_trace_events:
        Trace retention mode (see :class:`~repro.systolic.trace.Trace`).
        The default keeps the full event log; serving pools flip their
        shard arrays to aggregate-only so memory stays bounded over
        arbitrarily long request streams.
    """

    def __init__(
        self,
        config: SystolicConfig = ONE_SA_PAPER_CONFIG,
        retain_trace_events: bool = True,
        max_trace_events: Optional[int] = None,
    ) -> None:
        self.config = config
        self.hierarchy = build_hierarchy(config)
        self.addressing = DataAddressing(
            config.fmt,
            port_width=effective_out_width(config),
        )
        self.trace = Trace(
            retain_events=retain_trace_events, max_events=max_trace_events
        )

    # ------------------------------------------------------------------
    # Linear operations
    # ------------------------------------------------------------------
    def gemm_raw(
        self, a_raw: np.ndarray, b_raw: np.ndarray, label: str = "gemm"
    ) -> ExecutionResult:
        """Bit-accurate GEMM on raw fixed-point operands."""
        out, schedule = execute_gemm(self.config, a_raw, b_raw)
        self.trace.record(
            TraceEvent(
                kind="gemm",
                label=label,
                cycles=schedule.breakdown.total,
                ops=schedule.macs,
                breakdown=schedule.breakdown,
            )
        )
        return ExecutionResult(
            kind="gemm", raw=out, breakdown=schedule.breakdown, schedule=schedule
        )

    def gemm_raw_batched(
        self, a_raw: np.ndarray, b_raw: np.ndarray, label: str = "gemm"
    ) -> ExecutionResult:
        """Bit-accurate stacked GEMM: ``(B, M, K) @ (B, K, N)``.

        The hardware model still issues one GEMM per matrix pair — the
        trace records one event per pair with the closed-form cycle
        breakdown, exactly as if :meth:`gemm_raw` had been called in a
        loop — but the functional arithmetic runs as a single N-D
        :func:`fixed_matmul`, which is bit-identical to the loop (every
        output element remains one wide-accumulated dot product with a
        single saturating writeback).
        """
        a_raw = np.asarray(a_raw)
        b_raw = np.asarray(b_raw)
        if a_raw.ndim != 3 or b_raw.ndim != 3:
            raise ValueError("gemm_raw_batched expects 3-D stacked operands")
        if a_raw.shape[0] != b_raw.shape[0]:
            raise ValueError(
                f"stack mismatch: {a_raw.shape[0]} vs {b_raw.shape[0]} pairs"
            )
        if a_raw.shape[2] != b_raw.shape[1]:
            raise ValueError(f"shape mismatch: {a_raw.shape} @ {b_raw.shape}")
        n_pairs, m_dim, k_dim = a_raw.shape
        n_dim = b_raw.shape[2]
        schedule = plan_gemm(self.config, m_dim, k_dim, n_dim)
        out = fixed_matmul(a_raw, b_raw, self.config.fmt)
        event = TraceEvent(
            kind="gemm",
            label=label,
            cycles=schedule.breakdown.total,
            ops=schedule.macs,
            breakdown=schedule.breakdown,
        )
        for _ in range(n_pairs):
            self.trace.record(event)
        per_pair = schedule.breakdown
        total = CycleBreakdown(
            fill=per_pair.fill * n_pairs,
            compute=per_pair.compute * n_pairs,
            drain=per_pair.drain * n_pairs,
            overhead=per_pair.overhead * n_pairs,
        )
        return ExecutionResult(
            kind="gemm", raw=out, breakdown=total, schedule=schedule
        )

    def matmul(self, a: np.ndarray, b: np.ndarray, label: str = "gemm") -> np.ndarray:
        """Float convenience wrapper: quantize, run, dequantize."""
        fmt = self.config.fmt
        result = self.gemm_raw(quantize(a, fmt), quantize(b, fmt), label=label)
        return dequantize(result.raw, fmt)

    # ------------------------------------------------------------------
    # Nonlinear operations (the ONE-SA extension)
    # ------------------------------------------------------------------
    def apply_nonlinear_raw(
        self,
        function: str,
        x_raw: np.ndarray,
        granularity: float,
        label: Optional[str] = None,
        fused_ipf: bool = True,
        domain: "tuple[float, float] | None" = None,
        materialize_streams: bool = False,
    ) -> ExecutionResult:
        """Run one nonlinear op as the full IPF → rearrange → MHP chain.

        The chain exercises the microarchitecture modules (data
        addressing with the shift/scale path, the k/b parameter store,
        the data-rearrange pass and the diagonal MHP lanes); the result
        is bit-identical to
        :meth:`repro.core.cpwl.CPWLApproximator.evaluate_raw`, which the
        test suite asserts.

        The rearrange pass is metadata-only on the hot path: its
        relocation cost rides the MHP event (no separate trace entry,
        matching the seed accounting;
        :func:`~repro.systolic.rearrange.rearrange_cycles` is the
        isolated closed form) and the interleaved ``(x, 1)`` /
        ``(k, b)`` streams are pure routing — the MHP consumes the raw
        operands — so they are only constructed when
        ``materialize_streams=True`` and returned on
        ``ExecutionResult.streams``.
        """
        if not self.config.nonlinear_enabled:
            raise RuntimeError(
                "this design point is a conventional SA; nonlinear "
                "operations need nonlinear_enabled=True"
            )
        fmt = self.config.fmt
        label = label or function
        x_raw = np.atleast_2d(np.asarray(x_raw))
        approx = get_approximator(function, granularity, fmt, domain=domain)

        # --- IPF: preload (if needed) + addressing + parameter gather.
        preloaded = self.addressing.preload(approx.qtable, self.hierarchy["params"])
        if preloaded:
            self.trace.record(
                TraceEvent(
                    kind="preload",
                    label=f"{label}.table",
                    cycles=-(-approx.qtable.n_segments * 2 // self.config.l3_in_width),
                    ops=approx.qtable.n_segments,
                )
            )
        ipf_result, ipf_stats = self.addressing.run(x_raw)
        self.trace.record(
            TraceEvent(
                kind="ipf",
                label=f"{label}.ipf",
                cycles=0 if fused_ipf else ipf_stats.cycles,
                ops=ipf_stats.elements,
            )
        )

        # --- Rearrange: pair (k, b) and (x, 1) streams.  Metadata-only
        # on the hot path; the full interleaved streams are dead weight
        # unless a dataflow consumer asks for them.
        streams = None
        if materialize_streams:
            one_raw = 1 << fmt.frac_bits
            streams = rearrange_for_mhp(
                x_raw,
                ipf_result.k_raw,
                ipf_result.b_raw,
                self.config.pe_rows,
                one_raw,
                port_width=self.config.l3_in_width,
            )

        # --- MHP on the diagonal computation PEs.
        out, schedule = self._execute_mhp(
            x_raw, ipf_result.k_raw, ipf_result.b_raw, fused_ipf
        )
        self.trace.record(
            TraceEvent(
                kind="mhp",
                label=f"{label}.mhp",
                cycles=schedule.breakdown.total,
                ops=schedule.elements,
                breakdown=schedule.breakdown,
            )
        )
        return ExecutionResult(
            kind="mhp",
            raw=out,
            breakdown=schedule.breakdown,
            schedule=schedule,
            streams=streams,
        )

    def _execute_mhp(self, x_raw, k_raw, b_raw, fused_ipf):
        """MHP execution seam (the equivalence benchmark swaps in the
        seed's per-lane reference here)."""
        return execute_mhp(self.config, x_raw, k_raw, b_raw, fused_ipf=fused_ipf)

    def apply_nonlinear(
        self,
        function: str,
        x: np.ndarray,
        granularity: float,
        label: Optional[str] = None,
        domain: "tuple[float, float] | None" = None,
    ) -> np.ndarray:
        """Float convenience wrapper around :meth:`apply_nonlinear_raw`."""
        fmt = self.config.fmt
        result = self.apply_nonlinear_raw(
            function, quantize(x, fmt), granularity, label=label, domain=domain
        )
        return dequantize(result.raw, fmt)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def total_cycles(self) -> int:
        """Cycles accumulated over all traced operations (O(1))."""
        return self.trace.total_cycles

    def elapsed_seconds(self) -> float:
        """Wall-clock time of the traced work at the configured clock."""
        return self.total_cycles / self.config.clock_hz

    def utilization_summary(self) -> Dict[str, float]:
        """Share of traced cycles per operation kind.

        Reads the streaming aggregates — O(distinct kinds), never a
        re-scan of the event log.
        """
        total = self.total_cycles
        if not total:
            return {}
        return {
            kind: cycles / total
            for kind, cycles in self.trace.cycles_by_kind().items()
        }

    def reset(self) -> None:
        """Clear the trace and buffer accounting between experiments.

        The trace's retention mode is preserved.
        """
        self.trace.clear()
        self.hierarchy = build_hierarchy(self.config)
        self.addressing = DataAddressing(
            self.config.fmt,
            port_width=effective_out_width(self.config),
        )
