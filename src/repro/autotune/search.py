"""Seeded search drivers over :class:`~repro.autotune.tuning.TuningConfig`.

Two drivers share one evaluation fabric:

* :func:`random_search` — uniform seeded draws from a
  :class:`~repro.autotune.tuning.ConfigSpace`, the baseline every
  fancier strategy must beat;
* :func:`evolutionary_search` — a mutation/crossover loop: each
  generation scores a population, keeps the scalar-score elite as
  parents, and refills with crossover children and neighbor-hop
  mutants.

Candidate generation is driven entirely by one
``numpy.random.default_rng(seed)`` stream and replay is
deterministic, so a search is reproducible bit for bit — including
across ``n_workers``: workers only parallelize evaluation (one forked
process per chunk of candidates, the
:mod:`~repro.serving.multiproc` spawn/collect pattern), never the
choice of candidates.  Every scored candidate flows into a
:class:`~repro.autotune.front.TuningFront` via the existing Pareto
dominance code; pass a loaded front in to resume a previous run — its
surviving configs seed the first population and its entries stay in
the merged result.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import traceback
from typing import List, Optional, Sequence

import numpy as np

from repro.autotune.front import FrontEntry, TuningFront
from repro.autotune.objective import Objective, scalar_score
from repro.autotune.replay import EndpointSpec, evaluate
from repro.autotune.trace import TrafficTrace
from repro.autotune.tuning import ConfigSpace, TuningConfig
from repro.serving.faults import FaultPlan


class EvaluationFailedError(RuntimeError):
    """A search worker process died before delivering its scores."""

    def __init__(self, worker: int, n_candidates: int, exit_code: int) -> None:
        self.worker = worker
        self.n_candidates = n_candidates
        self.exit_code = exit_code
        super().__init__(
            f"search worker {worker} ({n_candidates} candidate(s)) exited "
            f"with code {exit_code} before delivering its scores"
        )


def _evaluate_chunk(
    trace: TrafficTrace,
    configs: Sequence[TuningConfig],
    endpoints: Sequence[EndpointSpec],
    faults: Optional[FaultPlan],
) -> List[Objective]:
    """Score a chunk of candidates, in order (worker body, also the
    in-process path)."""
    return [evaluate(trace, config, endpoints, faults=faults) for config in configs]


def _chunk_entry(payload, conn) -> None:
    """Process body of one search worker: evaluate, send, exit."""
    try:
        conn.send(_evaluate_chunk(*payload))
    except BaseException:  # pragma: no cover — exercised via subprocess
        traceback.print_exc(file=sys.stderr)
        conn.close()
        os._exit(1)
    conn.close()


def _evaluate_candidates(
    trace: TrafficTrace,
    configs: Sequence[TuningConfig],
    endpoints: Sequence[EndpointSpec],
    faults: Optional[FaultPlan] = None,
    n_workers: int = 1,
) -> List[FrontEntry]:
    """Score every candidate, fanning chunks out across processes.

    Candidates round-robin over workers (``configs[w::n]``) and the
    results reassemble in candidate order, so the outcome is
    independent of ``n_workers`` — a single-process run and an 8-way
    fan-out of the same seed produce the same entries.
    """
    n_workers = max(1, min(int(n_workers), len(configs)))
    if n_workers == 1:
        objectives = _evaluate_chunk(trace, configs, endpoints, faults)
    else:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover — non-POSIX fallback
            ctx = multiprocessing.get_context()
        procs = []
        for worker in range(n_workers):
            chunk = configs[worker::n_workers]
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_chunk_entry,
                args=((trace, chunk, endpoints, faults), child_conn),
            )
            proc.start()
            child_conn.close()
            procs.append((proc, parent_conn, len(chunk)))
        chunks: List[Optional[List[Objective]]] = []
        for worker, (proc, conn, size) in enumerate(procs):
            # Read before joining — a result larger than the pipe
            # buffer would deadlock a join-first collector.
            result: Optional[List[Objective]] = None
            try:
                result = conn.recv()
            except (EOFError, OSError):
                result = None
            finally:
                conn.close()
            proc.join()
            if result is None:
                raise EvaluationFailedError(
                    worker, size, proc.exitcode if proc.exitcode is not None else 0
                )
            chunks.append(result)
        objectives = [None] * len(configs)
        for worker, chunk_result in enumerate(chunks):
            for offset, objective in enumerate(chunk_result):
                objectives[worker + offset * n_workers] = objective
    return [
        FrontEntry(config=config, objective=objective)
        for config, objective in zip(configs, objectives)
    ]


def random_search(
    trace: TrafficTrace,
    space: ConfigSpace,
    endpoints: Sequence[EndpointSpec],
    n_candidates: int,
    seed: int,
    n_workers: int = 1,
    faults: Optional[FaultPlan] = None,
    front: Optional[TuningFront] = None,
) -> TuningFront:
    """Score ``n_candidates`` uniform seeded draws; return the front.

    Pass a previously saved ``front`` to resume: its entries survive
    into the merge and its ``evaluated`` count keeps accumulating.
    """
    if n_candidates < 1:
        raise ValueError(f"n_candidates must be >= 1, got {n_candidates}")
    rng = np.random.default_rng(seed)
    configs = [space.sample(rng) for _ in range(n_candidates)]
    entries = _evaluate_candidates(
        trace, configs, endpoints, faults=faults, n_workers=n_workers
    )
    if front is None:
        front = TuningFront.from_entries(trace.name, (), evaluated=0)
    return front.merge(entries, evaluated=len(entries))


def evolutionary_search(
    trace: TrafficTrace,
    space: ConfigSpace,
    endpoints: Sequence[EndpointSpec],
    generations: int,
    population: int,
    seed: int,
    n_workers: int = 1,
    faults: Optional[FaultPlan] = None,
    front: Optional[TuningFront] = None,
) -> TuningFront:
    """Mutation/crossover loop over ``generations`` populations.

    Generation 0 samples the space — seeded by the surviving configs
    of ``front`` when resuming.  Each later generation keeps the top
    third (by scalar score) of everything evaluated so far as parents
    and refills the population with crossover children and mutants.
    Every scored candidate is merged into the returned front.
    """
    if generations < 1:
        raise ValueError(f"generations must be >= 1, got {generations}")
    if population < 2:
        raise ValueError(f"population must be >= 2, got {population}")
    rng = np.random.default_rng(seed)
    if front is None:
        front = TuningFront.from_entries(trace.name, (), evaluated=0)

    pool: List[TuningConfig] = [entry.config for entry in front.entries]
    pool = pool[:population]
    while len(pool) < population:
        pool.append(space.sample(rng))

    scored: List[FrontEntry] = []
    for _ in range(generations):
        entries = _evaluate_candidates(
            trace, pool, endpoints, faults=faults, n_workers=n_workers
        )
        front = front.merge(entries, evaluated=len(entries))
        scored.extend(entries)
        parents = sorted(scored, key=lambda entry: scalar_score(entry.objective))
        parents = [entry.config for entry in parents[: max(2, population // 3)]]
        pool = []
        while len(pool) < population:
            if rng.integers(0, 2) == 0 and len(parents) >= 2:
                first, second = rng.choice(len(parents), size=2, replace=False)
                child = space.crossover(
                    parents[int(first)], parents[int(second)], rng
                )
            else:
                child = space.mutate(
                    parents[int(rng.integers(0, len(parents)))], rng
                )
            pool.append(child)
    return front
