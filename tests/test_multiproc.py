"""Multi-worker serving: partitioning, merged-report invariants, the
shared cache fabric, and bit-identity against single-engine serving.

The merge invariants are exact, not approximate: summed tenant cycles,
shard cycles and shed counts of the per-worker reports equal the
merged report's, and worker-local shard indices map injectively onto
the declared cluster's numbering.  The fabric tests run workers
*sequentially in-process* (two `_worker_main` calls over one store
root) so cross-process reuse is observable deterministically: the
second worker's first prompt lookup must be a fabric hit, and its
calibrator must start from the first worker's observations.
"""

import numpy as np
import pytest

from repro.nn.models import TinyBERT
from repro.serving import (
    CALIBRATION_NAMESPACE,
    ClusterSpec,
    InferenceEngine,
    ModelSpec,
    PrefixCache,
    ServingReport,
    TransformerPrefixAdapter,
    merge_reports,
    partition_cluster,
    serve_multiproc,
)
from repro.serving.multiproc import WorkerConfig, _worker_main
from repro.store import FileStore, get_store
from repro.systolic import SystolicConfig

CONFIG = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=8)
MODEL_KWARGS = dict(
    vocab=16, seq_len=8, dim=8, heads=2, ff_dim=16, n_layers=1,
    causal=True, seed=0,
)
PREFIX_LEN = 5


def _model_spec():
    return ModelSpec(
        name="bert", factory=TinyBERT, kwargs=MODEL_KWARGS, prefix_len=PREFIX_LEN
    )


def _requests(n, seed=0, shared_prefix=True):
    """Arrival-sorted request dicts with (optionally) one shared prompt."""
    rng = np.random.default_rng(seed)
    prefix = rng.integers(0, 16, size=PREFIX_LEN)
    requests = []
    for i in range(n):
        if shared_prefix:
            tokens = np.concatenate(
                [prefix, rng.integers(0, 16, size=8 - PREFIX_LEN)]
            )
        else:
            tokens = rng.integers(0, 16, size=8)
        requests.append(
            {"model": "bert", "inputs": tokens, "arrival": i * 1e-5}
        )
    return requests


class TestPartitioning:
    def test_even_split(self):
        cluster = ClusterSpec.homogeneous(CONFIG, 4)
        parts = partition_cluster(cluster, 2)
        assert [p.n_shards for p in parts] == [2, 2]

    def test_uneven_split_larger_blocks_first(self):
        cluster = ClusterSpec.homogeneous(CONFIG, 5)
        parts = partition_cluster(cluster, 3)
        assert [p.n_shards for p in parts] == [2, 2, 1]

    def test_partitions_preserve_shard_order(self):
        small = SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4)
        cluster = ClusterSpec.heterogeneous([CONFIG, small, CONFIG, small])
        parts = partition_cluster(cluster, 2)
        assert parts[0].shards == cluster.shards[:2]
        assert parts[1].shards == cluster.shards[2:]

    def test_too_many_workers_rejected(self):
        cluster = ClusterSpec.homogeneous(CONFIG, 2)
        with pytest.raises(ValueError, match="at least one shard"):
            partition_cluster(cluster, 3)
        with pytest.raises(ValueError, match="n_workers"):
            partition_cluster(cluster, 0)


class TestWorkerMain:
    def test_in_process_worker_restores_global_store(self, tmp_path):
        before = get_store()
        config = WorkerConfig(
            index=0,
            cluster=ClusterSpec.homogeneous(CONFIG, 1),
            models=(_model_spec(),),
            requests=tuple(_requests(4)),
            store_root=str(tmp_path / "fabric"),
        )
        report = _worker_main(config)
        assert get_store() is before  # no worker state leaked
        assert report.n_requests == 4

    def test_sequential_workers_share_prefix_fabric(self, tmp_path):
        root = str(tmp_path / "fabric")
        requests = _requests(4)
        base = WorkerConfig(
            index=0,
            cluster=ClusterSpec.homogeneous(CONFIG, 1),
            models=(_model_spec(),),
            requests=tuple(requests),
            store_root=root,
        )
        first = _worker_main(base)
        assert first.prefix_misses >= 1  # cold: computed and written through

        second = _worker_main(base)
        # The second worker's store is fresh, so a local hit is
        # impossible — its prompt must come off the shared fabric.
        assert second.prefix_misses == 0
        assert second.prefix_hits >= 1

    def test_sequential_workers_share_calibration(self, tmp_path):
        root = str(tmp_path / "fabric")
        config = WorkerConfig(
            index=0,
            cluster=ClusterSpec.homogeneous(CONFIG, 1),
            models=(_model_spec(),),
            requests=tuple(_requests(4)),
            store_root=root,
        )
        _worker_main(config)
        fabric = FileStore(root)
        state = fabric.get(CALIBRATION_NAMESPACE, "default")
        assert state is not None
        assert state["observations"]  # the run's traced batches persisted

    def test_worker_without_fabric_runs_isolated(self):
        config = WorkerConfig(
            index=0,
            cluster=ClusterSpec.homogeneous(CONFIG, 1),
            models=(_model_spec(),),
            requests=tuple(_requests(3)),
        )
        report = _worker_main(config)
        assert report.n_requests == 3
        assert report.prefix_hits + report.prefix_misses >= 1


class TestServeMultiproc:
    def test_single_worker_path_runs_in_process(self, tmp_path):
        cluster = ClusterSpec.homogeneous(CONFIG, 2)
        result = serve_multiproc(
            cluster,
            [_model_spec()],
            _requests(6),
            n_workers=1,
            store_root=str(tmp_path / "fabric"),
        )
        assert len(result.reports) == 1
        assert result.merged.n_requests == 6

    def test_two_workers_merge_invariants_exact(self, tmp_path):
        cluster = ClusterSpec.homogeneous(CONFIG, 2)
        requests = _requests(8)
        result = serve_multiproc(
            cluster,
            [_model_spec()],
            requests,
            n_workers=2,
            store_root=str(tmp_path / "fabric"),
        )
        merged, reports = result.merged, result.reports
        assert merged.n_requests == sum(r.n_requests for r in reports) == 8

        # tenant_cycles sum exactly.
        expected = {}
        for report in reports:
            for tenant, cycles in report.tenant_cycles.items():
                expected[tenant] = expected.get(tenant, 0) + cycles
        assert merged.tenant_cycles == expected
        assert merged.total_cycles == sum(r.total_cycles for r in reports)

        # Shard indices remap injectively onto the cluster numbering.
        assert set(merged.shard_cycles) <= set(range(cluster.n_shards))
        assert merged.shed_count == sum(r.shed_count for r in reports)
        assert len(merged.prefix_events) == sum(
            len(r.prefix_events) for r in reports
        )
        assert merged.wall_seconds == max(r.wall_seconds for r in reports)
        # Per-worker cache namespaces stay distinguishable.
        assert any(name.startswith("worker0/") for name in merged.cache_stats)
        assert any(name.startswith("worker1/") for name in merged.cache_stats)

    def test_multiproc_outputs_bit_identical_to_single_engine(self, tmp_path):
        cluster = ClusterSpec.homogeneous(CONFIG, 2)
        requests = _requests(8, shared_prefix=True)
        result = serve_multiproc(
            cluster,
            [_model_spec()],
            requests,
            n_workers=2,
            store_root=str(tmp_path / "fabric"),
        )

        model = TinyBERT(**MODEL_KWARGS)
        engine = InferenceEngine(
            ClusterSpec.homogeneous(CONFIG, 2).build(),
            prefix_cache=PrefixCache(),
        )
        engine.register(
            "bert", model, prefix_adapter=TransformerPrefixAdapter(model, PREFIX_LEN)
        )
        reference = engine.run(request_source=list(requests))

        def outputs_by_input(report):
            return {
                record.request.inputs.tobytes(): record.outputs
                for record in report.completed
            }

        expected = outputs_by_input(reference)
        actual = outputs_by_input(result.merged)
        assert set(actual) == set(expected)
        for key, outputs in actual.items():
            np.testing.assert_array_equal(outputs, expected[key])

    def test_merge_reports_length_mismatch_rejected(self):
        cluster = ClusterSpec.homogeneous(CONFIG, 2)
        parts = partition_cluster(cluster, 2)
        with pytest.raises(ValueError, match="reports"):
            merge_reports([], parts)
        with pytest.raises(ValueError, match="offsets"):
            merge_reports(
                [ServingReport(completed=(), shard_cycles={}, wall_seconds=0.0)]
                * 2,
                parts,
                offsets=[0],
            )


class TestMergeEdgeCases:
    def _run_worker(self, requests, n_shards=1):
        config = WorkerConfig(
            index=0,
            cluster=ClusterSpec.homogeneous(CONFIG, n_shards),
            models=(_model_spec(),),
            requests=tuple(requests),
        )
        return _worker_main(config)

    def test_worker_with_zero_completed_requests(self):
        # An idle worker (no requests routed to it) must merge as a
        # clean zero, not poison counters or throughput.
        busy = self._run_worker(_requests(4))
        idle = self._run_worker(())
        assert idle.n_requests == 0
        cluster = ClusterSpec.homogeneous(CONFIG, 2)
        parts = partition_cluster(cluster, 2)
        merged = merge_reports([busy, idle], parts)
        assert merged.n_requests == busy.n_requests
        assert merged.total_cycles == busy.total_cycles
        assert merged.throughput_rps == busy.throughput_rps
        # The idle worker's shard appears only through its (zero) busy
        # account, never with phantom cycles.
        assert 1 not in merged.shard_cycles or merged.shard_cycles[1] == 0

    def test_disjoint_cache_namespaces_stay_disjoint(self):
        # Workers touching non-overlapping cache namespaces must not
        # have stats invented for each other under the worker prefix.
        first = self._run_worker(_requests(2))
        second = self._run_worker(_requests(2, shared_prefix=False))
        cluster = ClusterSpec.homogeneous(CONFIG, 2)
        parts = partition_cluster(cluster, 2)
        merged = merge_reports([first, second], parts)
        for worker, report in enumerate((first, second)):
            qualified = {
                name
                for name in merged.cache_stats
                if name.startswith(f"worker{worker}/")
            }
            assert qualified == {
                f"worker{worker}/{name}" for name in report.cache_stats
            }

    def test_explicit_offsets_map_onto_donor_block(self):
        # The redistribution path of the supervisor: two reports over
        # the *same* physical block merge onto shared shard ids, with
        # per-shard counters summed — not onto phantom shards.
        first = self._run_worker(_requests(4))
        second = self._run_worker(_requests(4, seed=1))
        cluster = ClusterSpec.homogeneous(CONFIG, 2)
        parts = partition_cluster(cluster, 2)
        merged = merge_reports([first, second], parts, offsets=[0, 0])
        assert set(merged.shard_cycles) == {0}
        assert merged.shard_cycles[0] == (
            first.shard_cycles[0] + second.shard_cycles[0]
        )
        assert merged.shard_busy[0] == pytest.approx(
            first.shard_busy[0] + second.shard_busy[0]
        )
        assert all(c.shard == 0 for c in merged.completed)
