"""Dynamic batching of queued inference requests.

The batcher groups requests *per model* in arrival order and flushes an
open batch when either knob fires:

* **max_batch_size** — the batch is full the moment the Nth request
  joins; it becomes ready at that request's arrival time;
* **flush_timeout** — an incomplete batch stops waiting for company
  ``flush_timeout`` seconds after its oldest request arrived and
  becomes ready at that deadline.

Batching is planned deterministically from the arrival timestamps
(discrete-event style) rather than with threads, so a request stream
always produces the same batches — the property the equivalence tests
rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.serving.request import InferenceRequest


@dataclass(frozen=True)
class Batch:
    """A group of same-model requests executed as one stacked inference."""

    index: int
    model: str
    requests: Tuple[InferenceRequest, ...]
    ready_time: float

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def oldest_arrival(self) -> float:
        return self.requests[0].arrival


class DynamicBatcher:
    """Plans batches from a request stream with size/timeout knobs.

    Parameters
    ----------
    max_batch_size:
        Largest number of requests packed into one batch (>= 1).
    flush_timeout:
        Simulated seconds an incomplete batch waits for more requests
        before flushing.  ``0.0`` disables coalescing across distinct
        arrival times (same-time requests still share a batch).
    """

    def __init__(self, max_batch_size: int = 8, flush_timeout: float = 1e-3):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if flush_timeout < 0:
            raise ValueError(f"flush_timeout must be >= 0, got {flush_timeout}")
        self.max_batch_size = int(max_batch_size)
        self.flush_timeout = float(flush_timeout)

    def plan(self, requests: Sequence[InferenceRequest]) -> List[Batch]:
        """Group ``requests`` into batches, ordered by ready time."""
        pending: Dict[str, List[InferenceRequest]] = {}
        deadline: Dict[str, float] = {}
        batches: List[Batch] = []

        def flush(model: str, at: float) -> None:
            group = pending.pop(model, [])
            deadline.pop(model, None)
            if group:
                batches.append(
                    Batch(
                        index=len(batches),
                        model=model,
                        requests=tuple(group),
                        ready_time=at,
                    )
                )

        for req in sorted(requests, key=lambda r: (r.arrival, r.request_id)):
            # Timers that expired strictly before this arrival fire
            # first, in deadline order, so batch indices are
            # deterministic.  A request landing exactly at a deadline
            # still joins (this is what keeps a same-instant burst in
            # one batch even with flush_timeout=0).
            expired = sorted(
                (when, model)
                for model, when in deadline.items()
                if when < req.arrival
            )
            for when, model in expired:
                flush(model, at=when)

            group = pending.setdefault(req.model, [])
            group.append(req)
            if len(group) == 1:
                deadline[req.model] = req.arrival + self.flush_timeout
            if len(group) >= self.max_batch_size:
                flush(req.model, at=req.arrival)

        # End of stream: remaining timers run out.
        for when, model in sorted((when, model) for model, when in deadline.items()):
            flush(model, at=when)

        batches.sort(key=lambda b: (b.ready_time, b.index))
        return [
            Batch(index=i, model=b.model, requests=b.requests, ready_time=b.ready_time)
            for i, b in enumerate(batches)
        ]
