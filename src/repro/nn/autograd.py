"""Minimal reverse-mode automatic differentiation over numpy.

Just enough machinery to train the small CNN / transformer / GCN models
of the accuracy experiment: a :class:`Tensor` wrapping a float64 numpy
array, a tape built implicitly through parent links, and vectorized
backward rules for the ops those models need.  Broadcasting is handled
by summing gradients back over broadcast axes (:func:`_unbroadcast`).

This is a *training* substrate only — inference for the experiments runs
through the backends in :mod:`repro.nn.executor`, which operate on plain
arrays (and, for the CPWL backends, fixed-point raw integers).
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core.functions import gelu as _gelu_fn

ArrayLike = Union[float, int, np.ndarray, "Tensor"]


# ---------------------------------------------------------------------------
# Parameter dirty-tracking
# ---------------------------------------------------------------------------
# Version counters for in-place mutation of parameter arrays, keyed by
# the owning buffer's identity.  numpy arrays carry no mutation counter
# of their own, so consumers that cache derived forms of a parameter
# (e.g. the quantized-weight cache in repro.nn.executor) validate
# against this registry: anything that mutates a parameter in place
# must bump its version — the shipped optimizers do via
# :meth:`Tensor.mark_dirty` — and rebinding ``tensor.data`` to a fresh
# array invalidates naturally (new buffer identity).  Entries are
# dropped when the array is garbage collected.
_data_versions: Dict[int, int] = {}


def version_base(array: np.ndarray) -> np.ndarray:
    """The buffer owner: versions live on bases so views share them.

    Caches keying derived parameter data by buffer identity (the
    quantized-weight cache) resolve through this same helper, so a
    cache entry always validates against the buffer whose version
    :func:`bump_data_version` bumps.
    """
    base = getattr(array, "base", None)
    return array if base is None else base


def bump_data_version(array: np.ndarray) -> int:
    """Record an in-place mutation of ``array``; returns the new version."""
    base = version_base(array)
    key = id(base)
    if key not in _data_versions:
        # First mutation of this buffer: arrange cleanup at collection
        # (one finalizer per live buffer, not per bump).
        weakref.finalize(base, _data_versions.pop, key, None)
    version = _data_versions.get(key, 0) + 1
    _data_versions[key] = version
    return version


def data_version(array: np.ndarray) -> int:
    """Current mutation version of ``array``'s buffer (0 if never bumped)."""
    return _data_versions.get(id(version_base(array)), 0)

_SQRT_2 = np.sqrt(2.0)
_INV_SQRT_2PI = 1.0 / np.sqrt(2.0 * np.pi)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast axes."""
    if grad.shape == shape:
        return grad
    # Sum leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum axes that were 1 in the original shape.
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A differentiable numpy array node.

    Parameters
    ----------
    data:
        Array (or scalar) holding the value; stored as float64.
    requires_grad:
        Whether gradients should be accumulated into ``grad``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _lift(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(
        self,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        out = Tensor(data, requires_grad=any(p.requires_grad for p in parents))
        if out.requires_grad:
            out._backward = backward
            out._parents = tuple(parents)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this node (defaults to scalar seed 1)."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without grad requires a scalar output")
            grad = np.ones_like(self.data)
        topo: List[Tensor] = []
        seen: Set[int] = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, False)]
            while stack:
                current, expanded = stack.pop()
                if id(current) in seen:
                    continue
                if expanded:
                    seen.add(id(current))
                    topo.append(current)
                    continue
                stack.append((current, True))
                for parent in current._parents:
                    if id(parent) not in seen:
                        stack.append((parent, False))

        visit(self)
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    def mark_dirty(self) -> "Tensor":
        """Record an in-place mutation of :attr:`data`.

        Keeps parameter caches staleness-safe: backends caching a
        derived form of this tensor's array (the quantized-weight
        cache) revalidate against the buffer's version.  The shipped
        optimizers call this after every in-place update; custom code
        mutating ``tensor.data[...]`` directly must do the same
        (rebinding ``tensor.data`` to a new array needs nothing — a
        fresh buffer invalidates by identity).
        """
        bump_data_version(self.data)
        return self

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data**2))

        return self._make(out_data, (self, other), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                other._accumulate(np.swapaxes(self.data, -1, -2) @ grad)

        return self._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        out_data = self.data.reshape(*shape)
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return self._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes_tuple = axes if axes else tuple(reversed(range(self.ndim)))
        out_data = np.transpose(self.data, axes_tuple)
        inverse = np.argsort(axes_tuple)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.transpose(grad, inverse))

        return self._make(out_data, (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, key, grad)
                self._accumulate(full)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return self._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        expanded = self.data.max(axis=axis, keepdims=True)
        mask = (self.data == expanded).astype(np.float64)
        mask /= mask.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(mask * g)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (self.data > 0))

        return self._make(out_data, (self,), backward)

    def gelu(self) -> "Tensor":
        out_data = _gelu_fn(self.data)
        x = self.data
        # d/dx GELU = Phi(x) + x * phi(x)
        try:
            from scipy.special import erf

            cdf = 0.5 * (1.0 + erf(x / _SQRT_2))
        except ImportError:  # pragma: no cover
            cdf = 0.5 * (1.0 + np.tanh(np.sqrt(2 / np.pi) * (x + 0.044715 * x**3)))
        pdf = _INV_SQRT_2PI * np.exp(-0.5 * x**2)
        local = cdf + x * pdf

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * local)

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60, 60)))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(np.clip(self.data, -60, 60))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(np.maximum(self.data, 1e-12))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / np.maximum(self.data, 1e-12))

        return self._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    # ------------------------------------------------------------------
    # Composite ops
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - self.max(axis=axis, keepdims=True)
        exps = shifted.exp()
        return exps / exps.sum(axis=axis, keepdims=True)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - self.max(axis=axis, keepdims=True)
        return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy between logits ``(N, C)`` and integer labels."""
    labels = np.asarray(labels)
    logp = logits.log_softmax(axis=-1)
    picked = logp[np.arange(labels.shape[0]), labels]
    return -picked.mean()


def mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target."""
    diff = pred - Tensor(np.asarray(target, dtype=np.float64))
    return (diff * diff).mean()
