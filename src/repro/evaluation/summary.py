"""Run-everything driver: regenerate every paper artifact in one call.

``full_report()`` executes each experiment harness and returns the
formatted artifacts in paper order; ``examples/run_all_experiments.py``
prints them.  The accuracy experiment is the slow one (~30 s for the
full 12-task table); pass ``quick=True`` to restrict it to one task per
family.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.evaluation.accuracy import format_table3, table3_accuracy
from repro.evaluation.breakdown import format_figure1
from repro.evaluation.comparison import format_table4, table4_comparison
from repro.evaluation.perf_sweep import (
    figure8_linear,
    figure8_nonlinear,
    format_figure8,
    throughput_cliff_example,
)
from repro.evaluation.resource_sweep import (
    format_table1,
    format_table2,
    format_table5,
)

QUICK_TASKS = ("qmnist", "sst2", "cora")


def full_report(quick: bool = False, seed: int = 0) -> Dict[str, str]:
    """Regenerate every artifact; returns ``{artifact: formatted text}``.

    Parameters
    ----------
    quick:
        Restrict Table III to one task per family (fast smoke mode).
    seed:
        Seed for task generation / training in the accuracy experiment.
    """
    report: Dict[str, str] = {}
    report["fig1"] = format_figure1("cpu") + "\n\n" + format_figure1("array")
    report["table1"] = format_table1()
    report["table2"] = format_table2()

    tasks = list(QUICK_TASKS) if quick else None
    report["table3"] = format_table3(table3_accuracy(tasks=tasks, seed=seed))

    report["fig8_linear"] = format_figure8(figure8_linear(), "GOPS")
    report["fig8_nonlinear"] = format_figure8(figure8_nonlinear(), "GNFS")
    cliff = throughput_cliff_example()
    report["fig8_cliff"] = (
        "Section V-C drain example (32x32 input on 16x16 PEs): "
        f"{cliff['drain_fraction'] * 100:.1f}% of cycles transmit results "
        f"(paper: {cliff['paper_drain_fraction'] * 100:.1f}%)"
    )
    report["table4"] = format_table4(table4_comparison())
    report["table5"] = format_table5()
    return report


def print_report(quick: bool = False, seed: int = 0) -> None:
    """Print the full artifact set with separators (CLI convenience)."""
    for name, text in full_report(quick=quick, seed=seed).items():
        print("=" * 72)
        print(f"[{name}]")
        print(text)
        print()
