"""Deterministic trace replay: one candidate deployment, one scored report.

:func:`replay_trace` stands up a fresh
:class:`~repro.serving.engine.InferenceEngine` from a
:class:`~repro.autotune.tuning.TuningConfig`, re-issues every request
of a :class:`~repro.autotune.trace.TrafficTrace` at its recorded
arrival time, and runs the discrete-event loop to completion.  The
engine has no threads and no wall-clock dependencies, every replay
builds its models from seeded factories, and the process-global cache
store is swapped for a private one for the duration — so the same
trace under the same config (and the same optional
:class:`~repro.serving.faults.FaultPlan`) produces a bit-identical
:class:`~repro.serving.report.ServingReport`, which
:func:`report_fingerprint` pins as a digest the tests and the search
drivers can compare.

Endpoints cross process boundaries as :class:`EndpointSpec` values —
the same factory-plus-kwargs idiom as
:class:`~repro.serving.multiproc.ModelSpec`, extended with the
generation flag and a picklable :class:`WorkloadCostSpec` (the
closed-form transformer cost model ``cost_aware`` placement prices
batches with; the memoising closure is rebuilt inside the evaluating
process).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.autotune.objective import Objective, objective_from_report
from repro.autotune.trace import TrafficTrace
from repro.autotune.tuning import TuningConfig
from repro.serving.cluster import ClusterSpec, CostAwarePlacement, workload_cost_model
from repro.serving.engine import InferenceEngine
from repro.serving.faults import FaultPlan
from repro.serving.generation import GenerationAdapter
from repro.serving.prefix_cache import (
    PrefixCache,
    RadixKVCache,
    TransformerPrefixAdapter,
)
from repro.serving.report import ServingReport
from repro.serving.tenancy import TenantConfig
from repro.store import InProcessLRU, get_store, set_store


@dataclass(frozen=True)
class WorkloadCostSpec:
    """Picklable description of a transformer endpoint's cost model.

    Rebuilds :func:`~repro.serving.cluster.workload_cost_model` over
    :func:`~repro.nn.workload.transformer_serving_workload` inside the
    evaluating process (the memoised closure itself does not pickle).
    """

    seq_len: int
    dim: int
    heads: int
    ff_dim: int
    n_layers: int

    def build(self) -> Callable:
        from repro.nn.workload import transformer_serving_workload

        return workload_cost_model(
            lambda batch, shape: transformer_serving_workload(
                batch,
                self.seq_len,
                self.dim,
                self.heads,
                self.ff_dim,
                self.n_layers,
            )
        )


@dataclass(frozen=True)
class EndpointSpec:
    """One replayable endpoint, described by construction.

    ``factory(**kwargs)`` must be importable and deterministic (seeded
    weight init), so every replay serves bit-identical weights.
    ``generation=True`` wraps the model in a
    :class:`~repro.serving.generation.GenerationAdapter`;
    ``prefix_len`` opts plain-inference traffic into KV-prefix reuse
    when the candidate config budgets a prefix cache.
    """

    name: str
    factory: Callable[..., object]
    kwargs: Dict[str, object] = field(default_factory=dict)
    prefix_len: Optional[int] = None
    generation: bool = False
    cost: Optional[WorkloadCostSpec] = None


def build_engine(
    tuning: TuningConfig,
    endpoints: Sequence[EndpointSpec],
    tenants: Sequence[str] = (),
    faults: Optional[FaultPlan] = None,
) -> InferenceEngine:
    """Materialise one candidate deployment, models registered.

    The prefix/radix caches exist only when the config budgets them
    *and* an endpoint can use them; ``tenants`` (typically the trace's
    tenant list) are registered up front so the config's
    ``max_queue_depth`` admission cap applies from the first arrival.
    """
    dispatcher = ClusterSpec.heterogeneous(tuning.pool).build()
    placement = tuning.placement
    if tuning.placement == "cost_aware" and tuning.occupancy_penalty > 0:
        placement = CostAwarePlacement(occupancy_penalty=tuning.occupancy_penalty)
    prefix_cache = None
    if tuning.prefix_budget_bytes is not None and any(
        spec.prefix_len is not None for spec in endpoints
    ):
        prefix_cache = PrefixCache(tuning.prefix_budget_bytes)
    radix_cache = None
    if tuning.radix_budget_bytes is not None and any(
        spec.generation for spec in endpoints
    ):
        radix_cache = RadixKVCache(tuning.radix_budget_bytes)
    elastic = tuning.elastic()
    engine = InferenceEngine(
        dispatcher,
        max_batch_size=tuning.max_batch_size,
        flush_timeout=tuning.flush_timeout,
        placement=placement,
        tenants=tuple(
            TenantConfig(tenant, max_queue_depth=tuning.max_queue_depth)
            for tenant in tenants
        ),
        prefix_cache=prefix_cache,
        radix_cache=radix_cache,
        faults=faults,
        elastic=elastic if elastic.enabled else None,
    )
    for spec in endpoints:
        model = spec.factory(**dict(spec.kwargs))
        engine.register(
            spec.name,
            model,
            cost_model=spec.cost.build() if spec.cost is not None else None,
            prefix_adapter=(
                TransformerPrefixAdapter(model, spec.prefix_len)
                if spec.prefix_len is not None and prefix_cache is not None
                else None
            ),
            generation_adapter=(
                GenerationAdapter(model) if spec.generation else None
            ),
        )
    return engine


def replay_trace(
    trace: TrafficTrace,
    tuning: TuningConfig,
    endpoints: Sequence[EndpointSpec],
    faults: Optional[FaultPlan] = None,
) -> ServingReport:
    """Re-drive ``trace`` through a fresh engine built from ``tuning``.

    The process-global store is swapped for a private
    :class:`~repro.store.InProcessLRU` for the duration (and restored
    afterwards), so replays never share plan/approximator caches with
    the caller or each other — a candidate's report depends on the
    trace and the config, nothing else.
    """
    previous = get_store()
    try:
        set_store(InProcessLRU())
        engine = build_engine(
            tuning, endpoints, tenants=trace.tenants, faults=faults
        )
        for request in trace.requests:
            if request.is_generation:
                engine.submit_generation(
                    request.model,
                    request.inputs_array(),
                    request.max_new_tokens,
                    request.arrival,
                    stop_token=request.stop_token,
                    tenant=request.tenant,
                    priority=request.priority,
                    deadline=request.deadline,
                )
            else:
                engine.submit(
                    request.model,
                    request.inputs_array(),
                    request.arrival,
                    tenant=request.tenant,
                    priority=request.priority,
                    deadline=request.deadline,
                )
        return engine.run()
    finally:
        set_store(previous)


def evaluate(
    trace: TrafficTrace,
    tuning: TuningConfig,
    endpoints: Sequence[EndpointSpec],
    faults: Optional[FaultPlan] = None,
) -> Objective:
    """Replay and score: the candidate's objective tuple."""
    report = replay_trace(trace, tuning, endpoints, faults=faults)
    return objective_from_report(report, tuning.pool)


def report_fingerprint(report: ServingReport) -> str:
    """A digest over everything a replay determines.

    Two reports share a fingerprint iff their completions (ids,
    timing, shard, and output *bits*), placement log, shed/failure
    records, per-shard and per-tenant cycle counters, fault events and
    decode steps are identical — the "bit-identical replay" contract
    in one comparable value.  Host wall time is excluded (it is
    measured, not modelled).
    """
    digest = hashlib.sha256()

    def feed(*parts: object) -> None:
        for part in parts:
            digest.update(repr(part).encode())
            digest.update(b"\x1f")

    for record in sorted(report.completed, key=lambda c: c.request.request_id):
        outputs = np.ascontiguousarray(record.outputs)
        feed(
            record.request.request_id,
            record.request.model,
            record.request.tenant,
            record.request.arrival,
            record.start,
            record.finish,
            record.shard,
            record.batch_index,
            record.batch_cycles,
            outputs.dtype.str,
            outputs.shape,
        )
        digest.update(outputs.tobytes())
    for decision in report.placements:
        feed(
            decision.batch_index,
            decision.model,
            decision.tenant,
            decision.batch_size,
            decision.shard,
            decision.ready_time,
            decision.start,
            decision.finish,
            decision.attempt,
        )
    for shed in report.shed:
        feed(shed.request.request_id, shed.reason, shed.at)
    for failure in report.failed:
        feed(failure.request.request_id, failure.reason, failure.at)
    for event in report.fault_events:
        feed(event.kind, event.shard, event.batch_index, event.at, event.action)
    for step in report.generation_steps:
        feed(
            step.step_index,
            step.shard,
            step.batch_size,
            step.position,
            step.cycles,
            step.finish,
        )
    feed(sorted(report.shard_cycles.items()))
    feed(sorted(report.tenant_cycles.items()))
    feed(sorted(report.shard_busy.items()))
    return digest.hexdigest()
