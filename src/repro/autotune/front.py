"""The search's product: a persisted, resumable cost-vs-SLO Pareto front.

A :class:`TuningFront` holds the non-dominated
``(TuningConfig, Objective)`` pairs a search has found for one trace,
pruned by the paper's own dominance code
(:func:`repro.hardware.pareto.pareto_front`) over four axes —
minimize cost and p99, maximize SLO attainment and token throughput.
Fronts are JSON-safe values persisted on the :mod:`repro.store`
fabric (:func:`save_front` / :func:`load_front` under
:data:`FRONT_NAMESPACE`), and :meth:`TuningFront.merge` folds new
survivors into an existing front — so a later search run resumes
where the last one stopped instead of re-discovering it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.autotune.objective import Objective, scalar_score
from repro.autotune.tuning import TuningConfig
from repro.hardware.pareto import pareto_front
from repro.store import register_namespace

#: Schema version stamped into every serialized front.
FRONT_VERSION = 1

#: Store namespace holding persisted fronts (one entry per front name).
FRONT_NAMESPACE = "autotune.fronts"

register_namespace(FRONT_NAMESPACE, max_entries=32)

#: The four dominance axes, all expressed as minimization (the
#: convention :func:`repro.hardware.pareto.pareto_front` uses):
#: cheaper, more deadlines met, faster tail, more tokens.
_AXES = (
    lambda entry: entry.objective.cost,
    lambda entry: -entry.objective.slo_attainment,
    lambda entry: entry.objective.p99,
    lambda entry: -entry.objective.tokens_per_sec,
)


@dataclass(frozen=True)
class FrontEntry:
    """One surviving candidate: its config and its scored objective."""

    config: TuningConfig
    objective: Objective

    @property
    def score(self) -> float:
        """The entry's scalar rank (see
        :func:`~repro.autotune.objective.scalar_score`)."""
        return scalar_score(self.objective)

    def to_dict(self) -> Dict[str, object]:
        return {
            "config": self.config.to_dict(),
            "objective": self.objective.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FrontEntry":
        return cls(
            config=TuningConfig.from_dict(data["config"]),
            objective=Objective.from_dict(data["objective"]),
        )


def _dedupe(entries: Iterable[FrontEntry]) -> Tuple[FrontEntry, ...]:
    """Drop repeated configs (replay is deterministic: same config,
    same objective), keeping first-seen order."""
    seen = set()
    unique = []
    for entry in entries:
        key = json.dumps(entry.config.to_dict(), sort_keys=True)
        if key not in seen:
            seen.add(key)
            unique.append(entry)
    return tuple(unique)


@dataclass(frozen=True)
class TuningFront:
    """The non-dominated candidates found for one trace so far.

    ``evaluated`` counts every candidate ever scored into this front
    (across resumed runs), not just the survivors — the honest measure
    of how much search the front represents.
    """

    trace_name: str
    entries: Tuple[FrontEntry, ...]
    evaluated: int = 0
    version: int = FRONT_VERSION

    @classmethod
    def from_entries(
        cls,
        trace_name: str,
        entries: Iterable[FrontEntry],
        evaluated: Optional[int] = None,
    ) -> "TuningFront":
        """Build a front: dedupe, then keep the dominance survivors."""
        unique = _dedupe(entries)
        survivors = tuple(pareto_front(unique, _AXES))
        return cls(
            trace_name=trace_name,
            entries=survivors,
            evaluated=len(unique) if evaluated is None else evaluated,
        )

    def merge(self, entries: Iterable[FrontEntry], evaluated: int = 0) -> "TuningFront":
        """Fold newly scored candidates in; dominated entries fall off.

        This is how runs resume: load the persisted front, search some
        more, merge, save.  ``evaluated`` adds the number of *new*
        replays the entries came from.
        """
        return TuningFront.from_entries(
            self.trace_name,
            tuple(self.entries) + tuple(entries),
            evaluated=self.evaluated + evaluated,
        )

    @property
    def n_entries(self) -> int:
        return len(self.entries)

    def best(self) -> FrontEntry:
        """The front entry with the lowest scalar score."""
        if not self.entries:
            raise ValueError("the front is empty; nothing has been evaluated")
        return min(self.entries, key=lambda entry: entry.score)

    def describe(self) -> str:
        """One line per surviving config: objective axes and score."""
        lines = [
            f"front for trace {self.trace_name!r}: {self.n_entries} "
            f"non-dominated of {self.evaluated} evaluated"
        ]
        for entry in sorted(self.entries, key=lambda e: e.score):
            o = entry.objective
            lines.append(
                f"  cost {o.cost:8.1f}W  slo {o.slo_attainment:5.1%}  "
                f"p99 {o.p99 * 1e6:9.1f}us  tok/s {o.tokens_per_sec:8.1f}  "
                f"score {entry.score:.3e}  {entry.config.describe()}"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": self.version,
            "trace_name": self.trace_name,
            "evaluated": self.evaluated,
            "entries": [entry.to_dict() for entry in self.entries],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TuningFront":
        version = int(data["version"])
        if version != FRONT_VERSION:
            raise ValueError(
                f"front version {version} is not supported "
                f"(this build reads version {FRONT_VERSION})"
            )
        return cls(
            trace_name=str(data["trace_name"]),
            evaluated=int(data["evaluated"]),
            entries=tuple(
                FrontEntry.from_dict(item) for item in data["entries"]
            ),
            version=version,
        )


def save_front(front: TuningFront, store=None, name: Optional[str] = None) -> None:
    """Persist ``front`` on a cache store (JSON-safe payload).

    Keyed by ``name`` (default: the trace name), so one fabric can
    hold fronts for many traces side by side.
    """
    if store is None:
        from repro.store import get_store

        store = get_store()
    store.put(FRONT_NAMESPACE, name or front.trace_name, front.to_dict())


def load_front(name: str, store=None) -> Optional[TuningFront]:
    """Restore a :func:`save_front` snapshot, or None if absent."""
    if store is None:
        from repro.store import get_store

        store = get_store()
    data = store.get(FRONT_NAMESPACE, name)
    if data is None:
        return None
    return TuningFront.from_dict(data)
