"""Serving-level performance report.

Aggregates one :meth:`InferenceEngine.run` into the metrics a serving
operator watches: latency percentiles, request throughput, the cycle
cost per request summed over every shard's array trace — and, per
tenant, the same latency view plus cycle attribution (from the tenant
trace namespaces), deadline misses and SLO attainment.

The tenant cycle account is exact: every batch executes inside its
tenant's trace namespace, so :attr:`ServingReport.tenant_cycles` sums
to :attr:`ServingReport.total_cycles` — cycles are attributed, never
double-counted or dropped, even in aggregate-only trace retention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.serving.request import CompletedRequest
from repro.serving.tenancy import DEFAULT_TENANT, TenantConfig


@dataclass(frozen=True)
class ServingReport:
    """Summary of one engine run.

    Attributes
    ----------
    completed:
        Every finished request with placement and timing.
    shard_cycles:
        Traced cycles per hardware-routed shard, summed over the run.
    wall_seconds:
        Host wall-clock time the run took (simulation cost, *not* the
        modelled latency).
    tenant_cycles:
        Traced cycles attributed to each tenant (via the per-tenant
        trace namespaces); sums to :attr:`total_cycles`.
    tenants:
        Scheduling contracts of the tenants known to the engine
        (weights, priorities, SLO targets) for the SLO section.
    """

    completed: Tuple[CompletedRequest, ...]
    shard_cycles: Dict[int, int]
    wall_seconds: float
    tenant_cycles: Dict[str, int] = field(default_factory=dict)
    tenants: Dict[str, TenantConfig] = field(default_factory=dict)

    # -- request-level views --------------------------------------------
    @property
    def n_requests(self) -> int:
        return len(self.completed)

    @property
    def latencies(self) -> np.ndarray:
        """Per-request simulated latencies, seconds."""
        return np.array([c.latency for c in self.completed], dtype=np.float64)

    def latency_percentile(self, q: float) -> float:
        """The ``q``-th percentile of request latency (seconds)."""
        if not self.completed:
            return 0.0
        return float(np.percentile(self.latencies, q))

    @property
    def p50(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p90(self) -> float:
        return self.latency_percentile(90.0)

    @property
    def p99(self) -> float:
        return self.latency_percentile(99.0)

    # -- run-level views ------------------------------------------------
    @property
    def makespan(self) -> float:
        """First arrival to last completion, simulated seconds."""
        if not self.completed:
            return 0.0
        first = min(c.request.arrival for c in self.completed)
        last = max(c.finish for c in self.completed)
        return last - first

    @property
    def throughput_rps(self) -> float:
        """Requests per simulated second over the makespan."""
        span = self.makespan
        return self.n_requests / span if span > 0 else 0.0

    @property
    def total_cycles(self) -> int:
        return sum(self.shard_cycles.values())

    @property
    def cycles_per_request(self) -> float:
        return self.total_cycles / self.n_requests if self.completed else 0.0

    @property
    def n_batches(self) -> int:
        return len({(c.shard, c.batch_index) for c in self.completed})

    @property
    def mean_batch_size(self) -> float:
        return self.n_requests / self.n_batches if self.n_batches else 0.0

    # -- per-tenant views -----------------------------------------------
    @cached_property
    def _completed_by_tenant(self) -> Dict[str, List[CompletedRequest]]:
        """One-pass grouping; reports are immutable so caching is safe."""
        groups: Dict[str, List[CompletedRequest]] = {}
        for record in self.completed:
            groups.setdefault(record.request.tenant, []).append(record)
        return groups

    @property
    def tenant_ids(self) -> List[str]:
        """Tenants that appear in this run, sorted."""
        seen = set(self._completed_by_tenant)
        seen.update(self.tenant_cycles)
        return sorted(seen)

    def tenant_completed(self, tenant: str) -> List[CompletedRequest]:
        """This tenant's finished requests."""
        return list(self._completed_by_tenant.get(tenant, ()))

    def tenant_latencies(self, tenant: str) -> np.ndarray:
        """This tenant's simulated latencies, seconds."""
        return np.array(
            [c.latency for c in self._completed_by_tenant.get(tenant, ())],
            dtype=np.float64,
        )

    def tenant_percentile(self, tenant: str, q: float) -> float:
        """The ``q``-th latency percentile within one tenant."""
        latencies = self.tenant_latencies(tenant)
        if latencies.size == 0:
            return 0.0
        return float(np.percentile(latencies, q))

    def _effective_deadline(self, record: CompletedRequest) -> Optional[float]:
        """Request deadline, falling back to arrival + tenant SLO."""
        if record.request.deadline is not None:
            return record.request.deadline
        config = self.tenants.get(record.request.tenant)
        if config is not None and config.slo_latency is not None:
            return record.request.arrival + config.slo_latency
        return None

    def deadline_misses(self, tenant: str) -> int:
        """Requests that finished after their effective deadline."""
        return sum(
            1
            for c in self._completed_by_tenant.get(tenant, ())
            if (due := self._effective_deadline(c)) is not None and c.finish > due
        )

    def slo_attainment(self, tenant: str) -> Optional[float]:
        """Fraction of the tenant's requests that met their deadline.

        None when the tenant has no deadline-carrying requests (no
        per-request deadlines and no configured SLO).
        """
        scored = [
            c.finish <= due
            for c in self._completed_by_tenant.get(tenant, ())
            if (due := self._effective_deadline(c)) is not None
        ]
        if not scored:
            return None
        return sum(scored) / len(scored)

    def slo_section(self) -> str:
        """Per-tenant block of the summary: share, latency, SLO."""
        total = self.total_cycles
        lines = []
        for tenant in self.tenant_ids:
            records = self._completed_by_tenant.get(tenant, ())
            cycles = self.tenant_cycles.get(tenant, 0)
            share = cycles / total if total else 0.0
            config = self.tenants.get(tenant)
            lines.append(
                f"tenant {tenant!r}: {len(records)} requests, "
                f"{cycles:,} cycles ({share:.0%} of pool)"
            )
            if records:
                lines.append(
                    f"  latency p50/p99    : "
                    f"{self.tenant_percentile(tenant, 50.0) * 1e6:,.1f} / "
                    f"{self.tenant_percentile(tenant, 99.0) * 1e6:,.1f} us"
                )
            # One pass over the records so the printed miss count and
            # attainment percentage can never disagree.
            scored = missed = 0
            for record in records:
                due = self._effective_deadline(record)
                if due is not None:
                    scored += 1
                    if record.finish > due:
                        missed += 1
            if scored:
                target = (
                    f" (target {config.slo_latency * 1e6:,.1f} us)"
                    if config is not None and config.slo_latency is not None
                    else ""
                )
                lines.append(
                    f"  SLO attainment     : {(scored - missed) / scored:.0%}"
                    f"{target}, {missed} missed"
                )
        return "\n".join(lines)

    def summary(self) -> str:
        """Paper-artifact-style text table of the serving run."""
        lines = [
            f"requests served      : {self.n_requests}",
            f"batches executed     : {self.n_batches} "
            f"(mean size {self.mean_batch_size:.2f})",
            f"throughput           : {self.throughput_rps:,.0f} req/s (simulated)",
            f"latency p50/p90/p99  : {self.p50 * 1e6:,.1f} / "
            f"{self.p90 * 1e6:,.1f} / {self.p99 * 1e6:,.1f} us",
            f"cycles per request   : {self.cycles_per_request:,.0f}",
        ]
        for shard in sorted(self.shard_cycles):
            lines.append(
                f"  shard {shard} cycles    : {self.shard_cycles[shard]:,}"
            )
        tenant_ids = self.tenant_ids
        # Per-tenant block for any named tenant, or whenever deadlines
        # were in play (even on the implicit default tenant).
        if tenant_ids and (
            tenant_ids != [DEFAULT_TENANT]
            or any(self._effective_deadline(c) is not None for c in self.completed)
        ):
            lines.append(self.slo_section())
        lines.append(f"host wall time       : {self.wall_seconds * 1e3:,.1f} ms")
        return "\n".join(lines)
