"""Trace-driven autotuning: record traffic, search configs, redeploy.

The full closed loop of ``repro.autotune`` in one script:

1. **Record** — a default deployment (the full skewed 4-shard pool
   under blind round-robin) serves a deadline-carrying burst with a
   :class:`~repro.autotune.TraceRecorder` attached, capturing every
   admitted request into a replayable :class:`TrafficTrace`;
2. **Search** — the recorded trace is replayed over a short seeded
   random draw of candidate deployments (pool composition, placement
   policy + occupancy penalty, batching knobs), each scored into
   ``(cost, slo_attainment, p99, tokens_per_sec)`` with hardware cost
   from the paper's resource/power models, then refined by a seeded
   evolutionary pass;
3. **Front** — every scored candidate flows through the paper's
   Pareto dominance code into a resumable :class:`TuningFront`; the
   script prints the surviving cost-vs-SLO trade-offs;
4. **Redeploy** — the scalar-score winner is stood up as a live
   engine and serves the same traffic again, showing the improvement
   end to end.

Everything is seeded and discrete-event, so the numbers reproduce
exactly run to run.

    python examples/autotune_demo.py
"""

import numpy as np

from repro.autotune import (
    ConfigSpace,
    EndpointSpec,
    TraceRecorder,
    TuningConfig,
    WorkloadCostSpec,
    evaluate,
    evolutionary_search,
    random_search,
    replay_trace,
    scalar_score,
)
from repro.nn.models import TinyBERT
from repro.serving import ClusterSpec, InferenceEngine
from repro.systolic import SystolicConfig

#: The deployable design points: one big fast array, two mid points,
#: one small slow one (the operator's rack catalog).
CATALOG = (
    SystolicConfig(pe_rows=8, pe_cols=8, macs_per_pe=16, clock_hz=250e6),
    SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4, clock_hz=250e6),
    SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=4, clock_hz=100e6),
    SystolicConfig(pe_rows=4, pe_cols=4, macs_per_pe=2, clock_hz=100e6),
)

BERT_KW = dict(
    vocab=16, seq_len=8, dim=8, heads=2, ff_dim=16, n_layers=1,
    causal=True, seed=0,
)
COST = WorkloadCostSpec(seq_len=8, dim=8, heads=2, ff_dim=16, n_layers=1)
ENDPOINTS = (
    EndpointSpec(name="bert", factory=TinyBERT, kwargs=BERT_KW, cost=COST),
)

#: What the operator guessed: rack everything, place blindly.
DEFAULT = TuningConfig(
    pool=CATALOG, placement="round_robin",
    max_batch_size=4, flush_timeout=1e-4,
)


def record_traffic() -> "TraceRecorder":
    """Serve a deadline-carrying burst on the default deployment,
    recorder attached."""
    recorder = TraceRecorder(name="prod")
    engine = InferenceEngine(
        ClusterSpec.heterogeneous(DEFAULT.pool).build(),
        max_batch_size=DEFAULT.max_batch_size,
        flush_timeout=DEFAULT.flush_timeout,
        placement=DEFAULT.placement,
        recorder=recorder,
    )
    engine.register("bert", TinyBERT(**BERT_KW), cost_model=COST.build())
    rng = np.random.default_rng(10)
    for i in range(32):
        arrival = float(i % 8) * 1e-6  # four overlapping request waves
        engine.submit(
            "bert", rng.integers(0, 16, size=8), arrival,
            deadline=arrival + 5e-4,
        )
    report = engine.run()
    print(f"recorded {len(recorder)} requests off the default deployment "
          f"(p99 {report.p99 * 1e6:.1f} us)")
    return recorder


def main() -> None:
    # 1. Record.
    trace = record_traffic().trace()

    # 2. Search: a seeded random sweep, then an evolutionary refinement
    #    resuming from (and merging into) the same front.
    space = ConfigSpace(
        catalog=CATALOG, max_shards=4,
        batch_sizes=(2, 4, 8), flush_timeouts=(1e-4, 1e-3),
    )
    front = random_search(trace, space, ENDPOINTS, n_candidates=8, seed=0)
    front = evolutionary_search(
        trace, space, ENDPOINTS, generations=2, population=4, seed=1,
        front=front,
    )

    # 3. The front: surviving cost-vs-SLO trade-offs.
    print()
    print(front.describe())

    # 4. Redeploy the winner and serve the trace live.
    best = front.best()
    default_score = scalar_score(evaluate(trace, DEFAULT, ENDPOINTS))
    best_score = scalar_score(best.objective)
    report = replay_trace(trace, best.config, ENDPOINTS)
    print()
    print(f"default: score {default_score:.3e}  {DEFAULT.describe()}")
    print(f"tuned:   score {best_score:.3e}  {best.config.describe()}")
    print(f"improvement: {default_score / best_score:.2f}x on the "
          f"cost x SLO scalar")
    print(f"tuned deployment re-serving the trace: "
          f"{report.n_requests} requests, p99 {report.p99 * 1e6:.1f} us, "
          f"slo {report.objective_section()['slo_attainment']:.1%}")


if __name__ == "__main__":
    main()
