"""Sharded dispatch over a pool of execution backends.

A shard is one inference backend — typically an
:class:`~repro.nn.executor.ArrayBackend` wrapping its own
:class:`~repro.systolic.array.SystolicArray` instance, so every shard
carries an independent cycle trace.  The dispatcher hands batches to
shards round-robin and aggregates the per-array traces into the
serving-level cycle account the report consumes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


class ShardedDispatcher:
    """Round-robin placement of batches onto a backend pool.

    Parameters
    ----------
    backends:
        One inference backend per shard.  Backends exposing an
        ``array`` attribute (the hardware-routed ones) contribute cycle
        traces; others execute functionally with wall-clock timing.
    """

    def __init__(self, backends: Sequence[object]):
        if not backends:
            raise ValueError("dispatcher needs at least one backend shard")
        self.backends: List[object] = list(backends)
        self._next = 0

    @classmethod
    def from_arrays(cls, arrays: Sequence[object], granularity: float) -> "ShardedDispatcher":
        """Build a pool of :class:`ArrayBackend` shards over ``arrays``."""
        from repro.nn.executor import ArrayBackend

        return cls([ArrayBackend(array, granularity) for array in arrays])

    @property
    def n_shards(self) -> int:
        return len(self.backends)

    def acquire(self) -> Tuple[int, object]:
        """Next ``(shard_index, backend)`` in round-robin order."""
        shard = self._next
        self._next = (self._next + 1) % len(self.backends)
        return shard, self.backends[shard]

    def array_of(self, shard: int) -> Optional[object]:
        """The shard's systolic array, if it is hardware-routed."""
        return getattr(self.backends[shard], "array", None)

    def clock_hz(self, shard: int) -> Optional[float]:
        """Clock of the shard's array (None for functional backends)."""
        array = self.array_of(shard)
        return None if array is None else array.config.clock_hz

    def shard_cycles(self) -> Dict[int, int]:
        """Aggregate traced cycles per hardware-routed shard."""
        cycles: Dict[int, int] = {}
        for shard in range(self.n_shards):
            array = self.array_of(shard)
            if array is not None:
                cycles[shard] = array.total_cycles
        return cycles

    def namespace_cycles(self) -> Dict[str, int]:
        """Traced cycles per trace namespace, summed over the pool.

        The engine executes every batch inside the owning tenant's
        namespace (see :meth:`repro.systolic.trace.Trace.namespace`),
        so this is the pool-wide per-tenant cycle account — available
        even in aggregate-only retention mode.
        """
        totals: Dict[str, int] = {}
        for shard in range(self.n_shards):
            array = self.array_of(shard)
            if array is None:
                continue
            for name, cycles in array.trace.cycles_by_namespace().items():
                totals[name] = totals.get(name, 0) + cycles
        return totals

    def reset(self) -> None:
        """Clear all array traces and restart the round-robin pointer."""
        for shard in range(self.n_shards):
            array = self.array_of(shard)
            if array is not None:
                array.reset()
        self._next = 0
