"""Neural-network substrate.

The paper evaluates ONE-SA on three network families — CNN (ResNet),
transformer (BERT) and GNN (GCN).  Reproducing the accuracy experiment
(Table III) needs *trained* networks whose inference can be re-run with
CPWL-approximated nonlinearities, so this subpackage provides:

* a minimal reverse-mode autograd engine over numpy
  (:mod:`repro.nn.autograd`);
* layers and models for the three families (:mod:`repro.nn.layers`,
  :mod:`repro.nn.models`);
* training loops (:mod:`repro.nn.training`);
* swappable inference backends — exact float, CPWL+INT16, or the full
  systolic-array path (:mod:`repro.nn.executor`);
* op-count-exact *workload descriptors* of the full-size published
  models (ResNet-50, BERT-base, GCN) for the performance experiments
  (:mod:`repro.nn.workload`) and the Fig. 1 op-mix profiler
  (:mod:`repro.nn.profiler`).
"""

from repro.nn.autograd import Tensor
from repro.nn.executor import ArrayBackend, CPWLBackend, FloatBackend
from repro.nn.workload import GemmOp, NonlinearOp, Workload

__all__ = [
    "Tensor",
    "FloatBackend",
    "CPWLBackend",
    "ArrayBackend",
    "Workload",
    "GemmOp",
    "NonlinearOp",
]
