"""Synthetic dataset substrate.

The paper evaluates on 17 public benchmarks (QMNIST, Fashion-MNIST,
CIFAR-10/100, GLUE tasks, citation/Reddit graphs).  This environment is
offline, so each benchmark is replaced by a *synthetic stand-in task* of
matching modality and controlled difficulty (DESIGN.md documents the
substitution).  The stand-ins preserve what the accuracy experiment
measures: a trained network's sensitivity to CPWL granularity, which
grows with task difficulty.
"""

from repro.data.synthetic import (
    GraphTask,
    ImageTask,
    SequenceTask,
    make_graph_task,
    make_image_task,
    make_sequence_task,
)
from repro.data.registry import TASK_REGISTRY, TaskSpec, get_task

__all__ = [
    "ImageTask",
    "SequenceTask",
    "GraphTask",
    "make_image_task",
    "make_sequence_task",
    "make_graph_task",
    "TASK_REGISTRY",
    "TaskSpec",
    "get_task",
]
