"""General-purpose processor models (CPU / GPU / SoC).

Each model carries the paper's measured operating points (latency and
sustained throughput per workload, Table IV) plus the device's board
power.  For the three paper workloads the model reproduces the
measurements; for other workloads it extrapolates with the measured
efficiency of the most similar workload family.

The measured throughputs embed the paper's op accounting; when our own
workload descriptors count ops differently (e.g. ResNet-50 at 2.05 G
MACs where the paper's numbers imply ~4 G ops), latency — the quantity
the paper actually measured — is what the model preserves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.nn.workload import Workload


@dataclass(frozen=True)
class MeasuredPoint:
    """One published measurement of a workload on a processor."""

    latency_s: float
    throughput_gops: float


@dataclass(frozen=True)
class ProcessorModel:
    """A general-purpose processor with measured anchors.

    Attributes
    ----------
    name, tech_node_nm:
        Identity columns of Table IV.
    power_watts:
        Board power measured with the paper's current-probe setup.
    measured:
        Per-workload anchors keyed by workload name.
    """

    name: str
    tech_node_nm: int
    power_watts: float
    measured: Dict[str, MeasuredPoint]

    def latency_seconds(self, workload: Workload) -> float:
        """Inference latency for a workload.

        Exact for the anchored workloads; otherwise scaled from the
        anchor whose op count is closest (sustained GOPS transfer).
        """
        if workload.name in self.measured:
            return self.measured[workload.name].latency_s
        anchor = self._closest_anchor(workload)
        ops = workload.total_macs + workload.total_nonlinear_elements
        return ops / (anchor.throughput_gops * 1e9)

    def throughput_gops(self, workload: Workload) -> float:
        """Sustained throughput on a workload (paper's op accounting)."""
        if workload.name in self.measured:
            return self.measured[workload.name].throughput_gops
        anchor = self._closest_anchor(workload)
        return anchor.throughput_gops

    def efficiency(self, workload: Workload) -> float:
        """Throughput per watt (the Table IV T/P column)."""
        return self.throughput_gops(workload) / self.power_watts

    def _closest_anchor(self, workload: Workload) -> MeasuredPoint:
        if not self.measured:
            raise ValueError(f"{self.name} has no measured anchors")
        ops = workload.total_macs
        return min(
            self.measured.values(),
            key=lambda point: abs(
                point.latency_s * point.throughput_gops * 1e9 - ops
            ),
        )


#: Table IV measured rows (latency ms, throughput GOPS).
PROCESSORS: Dict[str, ProcessorModel] = {
    "cpu": ProcessorModel(
        name="Intel CPU i7-11700",
        tech_node_nm=14,
        power_watts=112.0,
        measured={
            "resnet50": MeasuredPoint(42.51e-3, 93.51),
            "bert-base": MeasuredPoint(45.92e-3, 119.77),
            "gcn": MeasuredPoint(34.12e-3, 33.99),
        },
    ),
    "gpu": ProcessorModel(
        name="NVIDIA GPU 3090Ti",
        tech_node_nm=8,
        power_watts=131.0,
        measured={
            "resnet50": MeasuredPoint(6.27e-3, 633.99),
            "bert-base": MeasuredPoint(7.95e-3, 691.81),
            "gcn": MeasuredPoint(1.56e-3, 743.45),
        },
    ),
    "soc": ProcessorModel(
        name="NVIDIA SoC AGX ORIN",
        tech_node_nm=12,
        power_watts=14.0,
        measured={
            "resnet50": MeasuredPoint(16.20e-3, 245.38),
            "bert-base": MeasuredPoint(21.52e-3, 255.57),
            "gcn": MeasuredPoint(4.92e-3, 235.73),
        },
    ),
}
