"""Knobs and event records of the elastic cluster runtime.

The elastic runtime is three engine behaviors layered over placement,
all off by default (the defaults are regression-pinned bit-identical
to the pre-elastic engine):

* **look-ahead placement** (``lookahead=True``) — fresh batches that
  are ready at the same scheduling instant are planned *jointly* by
  :class:`~repro.serving.cluster.LookaheadPlacement` list scheduling
  instead of committed one by one at the greedy earliest finish;
* **work-stealing / re-placement** (``steal=True``) — a planned batch
  whose shard has drifted (actual traced cycles diverged from the
  calibrated estimate beyond ``steal_drift_threshold``) or whose
  breaker opened is re-priced at execution time and migrates to the
  shard that now finishes it earliest; prefix-cache affinity is
  consulted, and when affinity and load conflict beyond
  ``affinity_break_factor`` the cache *entry* migrates through the
  store fabric instead of pinning the batch;
* **SLO-driven autoscaling** (``autoscale=True``) — the engine grows /
  shrinks the live pool from windowed SLO-attainment and shed-rate
  signals with hysteresis, priced by the hardware power model so the
  autotuner can search the knobs.

Every decision leaves an event record (:class:`StealEvent`,
:class:`ScalingEvent`) surfaced in
:meth:`~repro.serving.report.ServingReport.elastic_section`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class ElasticConfig:
    """Elastic-runtime knobs (everything off = the pinned baseline).

    Attributes
    ----------
    lookahead:
        Plan the whole ready set per scheduling round via
        :class:`~repro.serving.cluster.LookaheadPlacement` list
        scheduling instead of placing one batch greedily.
    steal:
        Re-price queued-but-unstarted batches at execution time and
        migrate them off drifted / tripped shards.
    autoscale:
        Grow/shrink the live pool from windowed SLO and shed signals.
    steal_drift_threshold:
        Re-place a planned batch when its shard's drift-corrected ETA
        exceeds the best alternative's by more than this factor
        (``1.5`` = 50% worse before a steal triggers).
    affinity_break_factor:
        A prefix-resident batch abandons its resident shard (migrating
        the cache entry through the fabric) when the resident ETA
        exceeds the best alternative's by more than this factor.
    autoscale_window:
        Completions per SLO/shed evaluation window.
    grow_below_attainment:
        Grow the pool when windowed SLO attainment falls below this.
    shrink_above_attainment:
        Shrink the pool when windowed attainment is at/above this
        *and* the windowed shed rate is zero.
    autoscale_cooldown:
        Simulated seconds between scaling actions (hysteresis).
    min_shards / max_shards:
        Live-pool size bounds the autoscaler honors.  ``max_shards``
        of ``None`` means "never beyond the declared pool + template
        growth limit" (the engine caps growth at the pool it can
        build).
    power_budget_watts:
        Refuse growth that would push the live pool's priced power
        (:func:`repro.hardware.power.power_watts` per shard) past this
        budget (``None`` = unbudgeted).
    """

    lookahead: bool = False
    steal: bool = False
    autoscale: bool = False
    steal_drift_threshold: float = 1.5
    affinity_break_factor: float = 2.0
    autoscale_window: int = 8
    grow_below_attainment: float = 0.9
    shrink_above_attainment: float = 0.98
    autoscale_cooldown: float = 1e-3
    min_shards: int = 1
    max_shards: Optional[int] = None
    power_budget_watts: Optional[float] = None

    def __post_init__(self) -> None:
        if self.steal_drift_threshold < 1.0:
            raise ValueError(
                f"steal_drift_threshold must be >= 1, got "
                f"{self.steal_drift_threshold}"
            )
        if self.affinity_break_factor < 1.0:
            raise ValueError(
                f"affinity_break_factor must be >= 1, got "
                f"{self.affinity_break_factor}"
            )
        if self.autoscale_window < 1:
            raise ValueError(
                f"autoscale_window must be >= 1, got {self.autoscale_window}"
            )
        if not 0.0 <= self.grow_below_attainment <= 1.0:
            raise ValueError("grow_below_attainment must be in [0, 1]")
        if not 0.0 <= self.shrink_above_attainment <= 1.0:
            raise ValueError("shrink_above_attainment must be in [0, 1]")
        if self.grow_below_attainment > self.shrink_above_attainment:
            raise ValueError(
                "grow_below_attainment must not exceed shrink_above_attainment "
                "(the hysteresis band would be inverted)"
            )
        if self.autoscale_cooldown < 0:
            raise ValueError("autoscale_cooldown must be >= 0")
        if self.min_shards < 1:
            raise ValueError(f"min_shards must be >= 1, got {self.min_shards}")
        if self.max_shards is not None and self.max_shards < self.min_shards:
            raise ValueError("max_shards must be >= min_shards")
        if self.power_budget_watts is not None and self.power_budget_watts <= 0:
            raise ValueError("power_budget_watts must be positive")

    @property
    def enabled(self) -> bool:
        """Any elastic behavior on?  False = the pinned baseline."""
        return self.lookahead or self.steal or self.autoscale

    def to_dict(self) -> Dict[str, object]:
        return {
            "lookahead": self.lookahead,
            "steal": self.steal,
            "autoscale": self.autoscale,
            "steal_drift_threshold": self.steal_drift_threshold,
            "affinity_break_factor": self.affinity_break_factor,
            "autoscale_window": self.autoscale_window,
            "grow_below_attainment": self.grow_below_attainment,
            "shrink_above_attainment": self.shrink_above_attainment,
            "autoscale_cooldown": self.autoscale_cooldown,
            "min_shards": self.min_shards,
            "max_shards": self.max_shards,
            "power_budget_watts": self.power_budget_watts,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ElasticConfig":
        kwargs = {}
        for name in (
            "lookahead", "steal", "autoscale", "steal_drift_threshold",
            "affinity_break_factor", "autoscale_window",
            "grow_below_attainment", "shrink_above_attainment",
            "autoscale_cooldown", "min_shards", "max_shards",
            "power_budget_watts",
        ):
            if name in data:
                kwargs[name] = data[name]
        return cls(**kwargs)

    def describe(self) -> str:
        if not self.enabled:
            return "elastic: off"
        parts = []
        if self.lookahead:
            parts.append("lookahead")
        if self.steal:
            parts.append(f"steal(drift>{self.steal_drift_threshold:g}x)")
        if self.autoscale:
            parts.append(
                f"autoscale(window={self.autoscale_window}, "
                f"slo<{self.grow_below_attainment:g})"
            )
        return "elastic: " + " + ".join(parts)


@dataclass(frozen=True)
class StealEvent:
    """One queued-but-unstarted batch migrated between shards."""

    batch_index: int
    model: str
    tenant: str
    from_shard: int
    to_shard: int
    at: float
    #: Why the batch moved: ``"drift"`` (calibrated estimate proved
    #: wrong), ``"breaker"`` (planned shard's breaker opened) or
    #: ``"affinity"`` (prefix affinity broken by load, entry migrated).
    reason: str
    #: ETA on the planned shard vs on the shard stolen to, at decision
    #: time — the imbalance the steal removed.
    planned_eta: float = 0.0
    stolen_eta: float = 0.0
    #: True when a prefix/radix cache entry moved through the fabric
    #: along with the batch.
    cache_migrated: bool = False


@dataclass(frozen=True)
class ScalingEvent:
    """One autoscaler pool-resize decision."""

    at: float
    #: ``"grow"`` (shard added or reactivated) or ``"shrink"``
    #: (shard retired from placement rotation).
    action: str
    shard: int
    #: The windowed signal that triggered the action.
    reason: str
    #: Windowed SLO attainment / shed rate at the decision.
    slo_attainment: float
    shed_rate: float
    #: Priced power of the live pool *after* the action.
    pool_power_watts: float = 0.0
