"""The multi-tenant batched inference serving engine.

:class:`InferenceEngine` accepts concurrent requests for any number of
registered models from any number of tenants, packs co-pending
same-tenant same-model requests into shared batches (one stacked
``infer`` call — whose linear layers fold the batch into single wide
GEMM tiles), and places the batches on a
:class:`~repro.serving.cluster.ClusterDispatcher` pool — possibly
*heterogeneous* (shards with different grid sizes, MAC counts and
clocks, declared via :class:`~repro.serving.cluster.ClusterSpec`).
Which tenant's ready batch runs next is decided by the configured
scheduling policy (weighted round-robin or strict priority — see
:mod:`repro.serving.scheduler`); *where* it runs is decided at
batch-ready time by the configured placement policy (round-robin,
least-loaded, or cost-aware — see :mod:`repro.serving.cluster`), which
sees each shard's design point and discrete-event busy horizon.  Each
run produces a :class:`~repro.serving.report.ServingReport` with
latency percentiles, throughput, cycles/request, per-shard utilization
and the placement-decision log, and a per-tenant SLO section
aggregated from the per-array traces.

**Admission control** is per tenant and off by default: a
:class:`~repro.serving.tenancy.TenantConfig` may cap its queue depth
(``max_queue_depth``) and opt into shedding requests whose deadline is
already unmeetable at admit time (``shed_doomed``).  Shed requests are
never executed; they surface as
:attr:`~repro.serving.report.ServingReport.shed_count` and per-record
reasons in the report.

**Admission is decoupled from execution.**  :meth:`submit` only queues;
the scheduler loop inside :meth:`run` (or a caller-driven
:meth:`step` sequence) interleaves admission with batch execution, so
new requests — from the submission buffer, from a streaming
``request_source``, or submitted by callbacks while a batch is in
flight — join their tenant queues without waiting for a drain.  The
loop is discrete-event over simulated arrival time, so a request
stream always reproduces the same batches, placements and report.

Batched execution is bit-identical to running every request alone:
stacking adds rows to the GEMMs and elementwise stages, and every
output element is still produced by the same saturating fixed-point
dot product — the equivalence the test suite asserts per backend.
Tenancy never changes results either: it only partitions batches and
orders them, which the same tests pin down.

**Memory contract.**  A serving process is long-lived, so the engine
puts every hardware shard's trace into *aggregate-only* mode at
construction (see :class:`~repro.systolic.trace.Trace`): per-request
cycle accounting reads the O(1) streaming aggregates and no further
per-event log accumulates (events a trace already retained are left
in place), keeping shard memory constant over arbitrarily long
request streams.  Per-tenant attribution costs O(tenants x labels),
not O(events): each batch executes inside its tenant's trace
namespace.  Request outputs are handed over exactly once by
:meth:`InferenceEngine.result` and released.  Pass
``retain_trace_events=True`` to keep the full per-event logs instead
(for Fig.-1-style op-mix breakdowns of a serving run); memory then
grows with the number of traced operations until
:meth:`InferenceEngine.reset`.

Typical multi-tenant use::

    from repro.serving import InferenceEngine, ClusterDispatcher, TenantConfig
    from repro.systolic import SystolicArray, ONE_SA_PAPER_CONFIG

    pool = ClusterDispatcher.from_arrays(
        [SystolicArray(ONE_SA_PAPER_CONFIG) for _ in range(2)], 0.25
    )
    engine = InferenceEngine(pool, max_batch_size=8, flush_timeout=1e-4)
    engine.register("bert", model)
    engine.register_tenant("gold", weight=3.0, slo_latency=2e-3)
    engine.register_tenant("free", weight=1.0)
    ids = [engine.submit("bert", row, tenant="gold") for row in gold_rows]
    ids += [engine.submit("bert", row, tenant="free") for row in free_rows]
    report = engine.run()
    outputs = [engine.result(i) for i in ids]
    print(report.summary())        # includes the per-tenant SLO section

The single-tenant API is unchanged: ``submit`` without a tenant uses
the implicit default tenant, and with one tenant the scheduler
degenerates to plain ready-time (FIFO) order.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass, replace
from typing import Callable, Deque, Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.serving.batcher import Batch
from repro.serving.cluster import (
    BatchProfile,
    BreakerConfig,
    BreakerTransition,
    CalibratingCostModel,
    ClusterDispatcher,
    LookaheadPlacement,
    PlacementDecision,
    PlacementPolicy,
    PrefixAffinePlacement,
    ShardHealth,
    ShardView,
    make_placement_policy,
)
from repro.serving.elastic import ElasticConfig, ScalingEvent, StealEvent
from repro.serving.faults import FaultPlan, FaultRecord, RetryPolicy, ShardCrash
from repro.serving.generation import ActiveSequence, DecodeStepRecord
from repro.serving.prefix_cache import (
    PrefixCache,
    PrefixEntry,
    PrefixEvent,
    RadixKVCache,
)
from repro.serving.report import ServingReport
from repro.serving.request import (
    CompletedRequest,
    FailureRecord,
    GenerationRequest,
    InferenceRequest,
    ShedRecord,
)
from repro.serving.scheduler import SchedulingPolicy, TenantScheduler
from repro.serving.stats import ShardStats
from repro.serving.tenancy import DEFAULT_TENANT, TenantConfig, TenantRegistry
from repro.store import get_store


@dataclass(frozen=True)
class ModelEndpoint:
    """A registered model: a name plus its batched inference callable.

    ``infer_fn(batch_inputs, backend)`` receives the stacked
    ``(B, ...)`` input array for batchable endpoints, or one unstacked
    sample when ``batchable`` is False (models whose inputs cannot be
    stacked, e.g. graphs of varying size).

    ``cost_model(profile, config)`` optionally estimates the cycles a
    batch of this model costs on a design point (see
    :func:`~repro.serving.cluster.workload_cost_model`); endpoints
    without one fall back to the engine's calibrating estimator.

    ``prefix_adapter`` opts the endpoint into KV-prefix reuse (see
    :class:`~repro.serving.prefix_cache.TransformerPrefixAdapter`);
    it is only consulted when the engine carries a
    :class:`~repro.serving.prefix_cache.PrefixCache`.

    ``generation_adapter`` opts the endpoint into autoregressive
    decode (see :class:`~repro.serving.generation.GenerationAdapter`):
    its requests arrive via
    :meth:`InferenceEngine.submit_generation`, prefill through the
    normal batch pipeline, then join the engine's continuous-batching
    decode pool.
    """

    name: str
    infer_fn: Callable[[np.ndarray, object], np.ndarray]
    batchable: bool = True
    cost_model: Optional[Callable[[BatchProfile, object], float]] = None
    prefix_adapter: Optional[object] = None
    generation_adapter: Optional[object] = None


class _RequestSource:
    """One-item-lookahead wrapper over a streaming request iterable.

    The lookahead holds the *raw* item: peeking only parses its
    arrival time, and full coercion (request-id assignment, validation,
    the engine's last-arrival bookkeeping) happens at :meth:`pop`, when
    the request is actually admitted — so an item merely peeked at has
    no side effects on concurrently submitted requests.
    """

    _SENTINEL = object()

    def __init__(self, items: Iterable, engine: "InferenceEngine") -> None:
        self._iter: Iterator = iter(items)
        self._engine = engine
        self._head: object = next(self._iter, self._SENTINEL)
        self._last_arrival: Optional[float] = None

    def peek_arrival(self) -> Optional[float]:
        if self._head is self._SENTINEL:
            return None
        return self._engine._peek_item_arrival(self._head)

    def pop(self) -> InferenceRequest:
        assert self._head is not self._SENTINEL
        request = self._engine._coerce_source_item(self._head)
        if self._last_arrival is not None and request.arrival < self._last_arrival:
            raise ValueError(
                "request_source must be sorted by arrival time: got "
                f"{request.arrival} after {self._last_arrival}"
            )
        self._last_arrival = request.arrival
        self._head = next(self._iter, self._SENTINEL)
        return request


class InferenceEngine:
    """Admission queue + tenant scheduler + sharded dispatch.

    Parameters
    ----------
    dispatcher:
        The shard pool batches execute on.
    max_batch_size, flush_timeout:
        Batch-assembly knobs, applied per (tenant, model) group (see
        :class:`~repro.serving.batcher.BatchAssembler`).
    retain_trace_events:
        False (default) flips every hardware shard's trace to
        aggregate-only mode so serving memory stays bounded; True keeps
        the full per-event logs on the shard arrays (see the module
        docstring's memory contract).
    policy:
        Tenant arbitration when several tenants have batches ready at
        the same instant: ``"weighted_round_robin"`` (default),
        ``"strict_priority"``, or a
        :class:`~repro.serving.scheduler.SchedulingPolicy` instance.
    placement:
        Which shard a ready batch executes on:
        ``"round_robin"`` (default; bit-identical to the historical
        acquire-time mapping), ``"least_loaded"``, ``"cost_aware"``,
        or a :class:`~repro.serving.cluster.PlacementPolicy` instance.
    tenants:
        Optional iterable of :class:`~repro.serving.tenancy.TenantConfig`
        to pre-register (equivalent to :meth:`register_tenant` calls).
    prefix_cache:
        Optional :class:`~repro.serving.prefix_cache.PrefixCache`
        enabling KV-prefix reuse for endpoints registered with a
        ``prefix_adapter``.  The configured placement policy is then
        wrapped in
        :class:`~repro.serving.cluster.PrefixAffinePlacement`, so
        batches whose prompt is already resident prefer the holding
        shard; prefix-less traffic is placed exactly as before.
    radix_cache:
        Optional :class:`~repro.serving.prefix_cache.RadixKVCache`
        enabling longest-prefix K/V reuse for generation endpoints: a
        prefill whose prompt extends an already-cached token sequence
        recomputes only the new suffix, and retiring sequences donate
        their decode history back to the tree.  Placement is wrapped
        in :class:`~repro.serving.cluster.PrefixAffinePlacement` the
        same way ``prefix_cache`` wraps it.
    faults:
        Optional :class:`~repro.serving.faults.FaultPlan` injecting
        shard crashes and slowdowns into the discrete-event clock.
        Without one the fault path is fully dormant: no failures, no
        retries, and the run is bit-identical to pre-fault engines.
    retry_policy:
        Backoff/budget for re-executing batches whose shard faulted
        (see :class:`~repro.serving.faults.RetryPolicy`; a default
        policy applies when faults are enabled without one).
    breaker:
        Per-shard circuit-breaker knobs
        (:class:`~repro.serving.cluster.BreakerConfig`); every shard
        gets an independent :class:`~repro.serving.cluster.ShardHealth`
        driven by batch outcomes, and placement only sees shards whose
        breaker currently admits work.
    elastic:
        Optional :class:`~repro.serving.elastic.ElasticConfig` turning
        on the elastic cluster runtime: look-ahead placement (the
        whole ready set is planned jointly per scheduling round by
        :class:`~repro.serving.cluster.LookaheadPlacement` list
        scheduling), work-stealing (queued-but-unstarted batches are
        re-priced with per-shard drift at execution time and migrate
        off overloaded / tripped shards, moving prefix-cache entries
        through the store fabric when load breaks affinity), and
        SLO-driven autoscaling (the live pool grows/shrinks from
        windowed attainment and shed signals, priced by the hardware
        power model).  The default — everything off — is
        regression-pinned bit-identical to the pre-elastic engine.
    recorder:
        Optional traffic-capture hook — any object with a
        ``record(request)`` method, typically a
        :class:`repro.autotune.TraceRecorder`.  Called once per
        validated submission (``submit``, ``submit_generation``, and
        ``run(request_source=...)`` items alike), so the captured
        trace is exactly the traffic the engine admitted.  Also
        settable after construction via the ``recorder`` attribute.
    """

    def __init__(
        self,
        dispatcher: ClusterDispatcher,
        max_batch_size: int = 8,
        flush_timeout: float = 1e-3,
        retain_trace_events: bool = False,
        policy: Union[str, SchedulingPolicy] = "weighted_round_robin",
        placement: Union[str, PlacementPolicy] = "round_robin",
        tenants: Optional[Iterable[TenantConfig]] = None,
        prefix_cache: Optional[PrefixCache] = None,
        radix_cache: Optional[RadixKVCache] = None,
        faults: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[BreakerConfig] = None,
        elastic: Optional[ElasticConfig] = None,
        recorder: Optional[object] = None,
    ):
        self.dispatcher = dispatcher
        for shard in range(dispatcher.n_shards):
            array = dispatcher.array_of(shard)
            if array is not None:
                array.trace.configure(retain_events=retain_trace_events)
        self.tenants = TenantRegistry()
        for config in tenants or ():
            self.tenants.register(config)
        self.scheduler = TenantScheduler(
            self.tenants, policy, max_batch_size, flush_timeout
        )
        self.placement = make_placement_policy(placement)
        self.prefix_cache = prefix_cache
        self.radix_cache = radix_cache
        if (prefix_cache is not None or radix_cache is not None) and not isinstance(
            self.placement, PrefixAffinePlacement
        ):
            self.placement = PrefixAffinePlacement(self.placement)
        self._endpoints: Dict[str, ModelEndpoint] = {}
        self._submitted: List[InferenceRequest] = []
        self._run_buffered = 0  # run()-local feed not yet admitted
        self._results: Dict[int, np.ndarray] = {}
        self._next_id = 0
        self._last_arrival = 0.0
        self._calibrator = CalibratingCostModel()
        self._placements: List[PlacementDecision] = []
        self._shed: List[ShedRecord] = []
        self._shard_busy: Dict[int, float] = {}
        self._prefix_events: List[PrefixEvent] = []
        # Fault tolerance: the plan (None = dormant), the retry budget,
        # one breaker per shard, the simulated-time retry queue, and
        # the per-run failure/fault/transition logs.
        self.faults = faults
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self._breaker_log: List[BreakerTransition] = []
        self._breaker_config = breaker
        self._health: Dict[int, ShardHealth] = {
            shard: ShardHealth(shard, breaker, on_transition=self._breaker_log.append)
            for shard in range(dispatcher.n_shards)
        }
        # Elastic runtime: knobs, the look-ahead planner, the planned
        # (batch, shard) queue of the current scheduling round, the
        # per-shard live stats (drift feeds stealing), the steal /
        # scaling event logs, and the autoscaler's windowed signals.
        self.elastic = elastic if elastic is not None else ElasticConfig()
        planner = getattr(self.placement, "inner", self.placement)
        self._lookahead = (
            planner
            if isinstance(planner, LookaheadPlacement)
            else LookaheadPlacement()
        )
        self._planned: Deque[Tuple[Batch, Optional[int]]] = deque()
        self._shard_stats: Dict[int, ShardStats] = {}
        self._steals: List[StealEvent] = []
        self._scaling_log: List[ScalingEvent] = []
        self._slo_window: List[bool] = []
        self._window_sheds = 0
        self._last_scale_at: Optional[float] = None
        # Heap of (wake_time, seq, attempt, excluded_shard, batch);
        # seq breaks wake-time ties deterministically (batches don't
        # compare) in requeue order.
        self._retry_queue: List[Tuple[float, int, int, Optional[int], Batch]] = []
        self._retry_seq = 0
        self._work_consumed = 0
        self._failed: List[FailureRecord] = []
        self._fault_log: List[FaultRecord] = []
        # Continuous-batching decode pool: sequences between their
        # prefill and their retirement, re-batched every iteration.
        self._active: List[ActiveSequence] = []
        self._gen_steps: List[DecodeStepRecord] = []
        # Traffic capture: any object with record(request) — typically
        # a repro.autotune.TraceRecorder (duck-typed so serving never
        # imports the autotune layer above it).  Settable after
        # construction too; None = no capture.
        self.recorder = recorder

    # ------------------------------------------------------------------
    # Registration and submission
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        model: Optional[object] = None,
        *,
        infer_fn: Optional[Callable[[np.ndarray, object], np.ndarray]] = None,
        batchable: bool = True,
        cost_model: Optional[Callable[[BatchProfile, object], float]] = None,
        prefix_adapter: Optional[object] = None,
        generation_adapter: Optional[object] = None,
    ) -> None:
        """Register a model endpoint under ``name``.

        Pass either ``model`` (an object with ``infer(inputs, backend)``)
        or an explicit ``infer_fn``.  ``cost_model`` optionally supplies
        closed-form batch-cycle estimates for cost-aware placement (see
        :func:`~repro.serving.cluster.workload_cost_model`); without
        one, estimates come from the engine's calibrating model once
        the (model, shape) has executed somewhere.  ``prefix_adapter``
        (see
        :class:`~repro.serving.prefix_cache.TransformerPrefixAdapter`)
        opts the endpoint into KV-prefix reuse; it takes effect when
        the engine was constructed with a ``prefix_cache`` and requires
        a batchable endpoint (the adapter runs the stacked batch
        itself).

        ``generation_adapter`` (see
        :class:`~repro.serving.generation.GenerationAdapter`) opts the
        endpoint into autoregressive decode via
        :meth:`submit_generation`.  It is mutually exclusive with
        ``prefix_adapter`` (generation has its own prefix reuse, the
        engine-level ``radix_cache``), supplies the endpoint's cost
        model when none is given, and can stand in for ``model`` /
        ``infer_fn`` — plain :meth:`submit` traffic then runs the
        wrapped model's ``infer``.
        """
        if generation_adapter is not None:
            if prefix_adapter is not None:
                raise ValueError(
                    "generation_adapter and prefix_adapter are mutually "
                    "exclusive: generation prefills reuse prefixes through "
                    "the engine's radix_cache instead"
                )
            if not batchable:
                raise ValueError(
                    "generation_adapter requires a batchable endpoint: "
                    "prefill and decode both run stacked batches"
                )
            gen_model = getattr(generation_adapter, "model", None)
            if model is not None and gen_model is not None and gen_model is not model:
                raise ValueError(
                    "generation_adapter wraps a different model than the one "
                    "being registered; build the adapter from the same model "
                    "instance"
                )
            if model is None and infer_fn is None:
                model = gen_model
            if cost_model is None:
                cost_model = generation_adapter.cost_model
        if (model is None) == (infer_fn is None):
            raise ValueError("register() needs exactly one of model / infer_fn")
        if prefix_adapter is not None and not batchable:
            raise ValueError(
                "prefix_adapter requires a batchable endpoint: the adapter "
                "executes the stacked batch on the hit and miss paths"
            )
        adapter_model = getattr(prefix_adapter, "model", None)
        if model is not None and adapter_model is not None and adapter_model is not model:
            # Prefix-keyed batches execute through the adapter's model,
            # not infer_fn — a mismatched pair would silently serve a
            # different model's outputs.
            raise ValueError(
                "prefix_adapter wraps a different model than the one being "
                "registered; build the adapter from the same model instance"
            )
        if infer_fn is None:
            infer_fn = model.infer  # type: ignore[union-attr]
        self._endpoints[name] = ModelEndpoint(
            name, infer_fn, batchable, cost_model, prefix_adapter, generation_adapter
        )

    def register_tenant(
        self,
        tenant_id: str,
        *,
        weight: float = 1.0,
        priority: int = 0,
        slo_latency: Optional[float] = None,
    ) -> TenantConfig:
        """Declare a tenant's fair-share weight, priority and SLO.

        Unregistered tenant ids are still accepted at :meth:`submit`
        with default weight 1 / priority 0 / no SLO.
        """
        return self.tenants.register(
            TenantConfig(
                tenant_id=tenant_id,
                weight=weight,
                priority=priority,
                slo_latency=slo_latency,
            )
        )

    def submit(
        self,
        model: str,
        inputs: np.ndarray,
        arrival: Optional[float] = None,
        *,
        tenant: str = DEFAULT_TENANT,
        priority: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> int:
        """Queue one request; returns its id for :meth:`result`.

        ``arrival`` is the simulated arrival time; it defaults to the
        previous request's arrival, so back-to-back submissions model a
        concurrent burst that the batcher may pack together.
        ``priority`` defaults to the tenant's configured priority,
        resolved lazily at scheduling time (so ``register_tenant``
        after ``submit`` still applies), and ``deadline`` (absolute
        simulated time) defaults to none — a request finishing late is
        still answered but counts as a miss in the report's SLO
        accounting.

        Submission is pure admission: it can be called before a run,
        between :meth:`step` calls, or from code executing while a
        batch is in flight; the scheduler loop picks the request up at
        its next decision point.
        """
        request = self._make_request(model, inputs, arrival, tenant, priority, deadline)
        self._submitted.append(request)
        return request.request_id

    def submit_generation(
        self,
        model: str,
        prompt: np.ndarray,
        max_new_tokens: int,
        arrival: Optional[float] = None,
        *,
        stop_token: Optional[int] = None,
        tenant: str = DEFAULT_TENANT,
        priority: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> int:
        """Queue one autoregressive generation request; returns its id.

        The endpoint must be registered with a ``generation_adapter``.
        ``prompt`` is a 1-D token row; the request prefills through the
        normal batch pipeline (grouped with identical prompts), then
        decodes greedily in the engine's continuous-batching pool until
        ``max_new_tokens`` tokens are generated or ``stop_token`` is
        emitted (the stop token is included in the output).
        :meth:`result` returns the generated token row.  Arrival,
        tenant, priority and deadline behave exactly as in
        :meth:`submit`.
        """
        generation = GenerationRequest(
            prompt=prompt,
            max_new_tokens=int(max_new_tokens),
            stop_token=None if stop_token is None else int(stop_token),
        )
        request = self._make_request(
            model, generation.prompt, arrival, tenant, priority, deadline,
            generation=generation,
        )
        self._submitted.append(request)
        return request.request_id

    def _make_request(
        self,
        model: str,
        inputs: np.ndarray,
        arrival: Optional[float],
        tenant: str,
        priority: Optional[int],
        deadline: Optional[float],
        generation: Optional[GenerationRequest] = None,
    ) -> InferenceRequest:
        """Validate and build one request (shared by submit and source)."""
        if model not in self._endpoints:
            raise KeyError(
                f"unknown model {model!r}; registered: {sorted(self._endpoints)}"
            )
        if arrival is None:
            arrival = self._last_arrival
        arrival = float(arrival)
        if arrival < 0:
            raise ValueError(f"arrival must be >= 0, got {arrival}")
        endpoint = self._endpoints[model]
        prefix_key = None
        if generation is not None:
            # Generation requests always carry a prompt-content key:
            # batch assembly groups on it, so one prefill batch is one
            # prompt — the shape-uniformity np.stack needs, and the
            # uniformity the radix warm path verifies.  Validation
            # happens before any engine state is touched.
            adapter = endpoint.generation_adapter
            if adapter is None:
                raise ValueError(
                    f"model {model!r} was registered without a "
                    "generation_adapter; submit_generation needs one"
                )
            adapter.validate(generation.prompt, generation.max_new_tokens)
            prefix_key = adapter.prompt_key(generation.prompt)
        elif self.prefix_cache is not None and endpoint.prefix_adapter is not None:
            # Key the request on its prompt content at admission: batch
            # assembly groups on it, so one batch is one prompt and the
            # cache decision at execution applies to the whole batch.
            # May raise on malformed inputs — before any engine state
            # (the arrival bookkeeping below) is touched, so a failed
            # submit leaves the engine unchanged.
            prefix_key = endpoint.prefix_adapter.request_key(inputs)
        self._last_arrival = arrival
        request = InferenceRequest(
            request_id=self._next_id,
            model=model,
            inputs=np.asarray(inputs),
            arrival=arrival,
            tenant=tenant,
            priority=None if priority is None else int(priority),
            deadline=None if deadline is None else float(deadline),
            prefix_key=prefix_key,
            generation=generation,
        )
        self._next_id += 1
        # Capture after validation succeeded: a recorder sees exactly
        # the traffic the engine admitted (including request_source
        # items), never a submission that raised.
        if self.recorder is not None:
            self.recorder.record(request)
        return request

    _SOURCE_FIELDS = ("model", "inputs", "arrival", "tenant", "priority", "deadline")

    def _peek_item_arrival(self, item: object) -> float:
        """Arrival of a raw ``request_source`` item, without admitting it."""
        if isinstance(item, dict):
            arrival = item.get("arrival")
        elif isinstance(item, tuple):
            arrival = item[2] if len(item) > 2 else None
        else:
            arrival = self._raise_bad_source_item(item)
        # An omitted or explicit-None arrival defaults, like submit().
        return self._last_arrival if arrival is None else float(arrival)

    @staticmethod
    def _raise_bad_source_item(item: object) -> None:
        # InferenceRequest instances are deliberately NOT accepted:
        # the engine assigns its own request ids, so a caller-built
        # request's id would silently stop matching result().
        raise TypeError(
            "request_source items must be dicts of submit() keywords or "
            f"(model, inputs[, arrival[, tenant]]) tuples, got {type(item)!r}"
        )

    def _coerce_source_item(self, item: object) -> InferenceRequest:
        """Turn one ``request_source`` element into a queued request."""
        if isinstance(item, dict):
            unknown = set(item) - set(self._SOURCE_FIELDS)
            if unknown:
                raise ValueError(
                    f"request_source dict has unknown keys {sorted(unknown)}; "
                    f"allowed: {list(self._SOURCE_FIELDS)}"
                )
            kwargs = dict(item)
        elif isinstance(item, tuple):
            fields = self._SOURCE_FIELDS[:4]
            if len(item) > len(fields):
                raise ValueError(
                    f"request_source tuple has {len(item)} elements; expected "
                    f"at most {len(fields)}: {fields} (use a dict for "
                    "priority/deadline)"
                )
            kwargs = dict(zip(fields, item))
        else:
            self._raise_bad_source_item(item)
        missing = {"model", "inputs"} - set(kwargs)
        if missing:
            raise ValueError(
                f"request_source item is missing required {sorted(missing)}: {item!r}"
            )
        return self._make_request(
            model=kwargs.get("model"),
            inputs=kwargs["inputs"],
            arrival=kwargs.get("arrival"),
            tenant=kwargs.get("tenant", DEFAULT_TENANT),
            priority=kwargs.get("priority"),
            deadline=kwargs.get("deadline"),
        )

    @property
    def pending(self) -> int:
        """Requests admitted or buffered, not yet executed.

        Accurate even when read from inside a run (e.g. by an
        ``infer_fn`` callback): requests the scheduler loop has taken
        out of the submission buffer but not yet admitted are counted.
        """
        return (
            len(self._submitted)
            + self._run_buffered
            + self.scheduler.pending
            + sum(batch.size for batch, _ in self._planned)
        )

    # ------------------------------------------------------------------
    # Execution: the scheduler loop
    # ------------------------------------------------------------------
    def run(self, request_source: Optional[Iterable] = None) -> ServingReport:
        """Serve until every queue is drained, then report.

        The discrete-event scheduler loop alternates admission and
        execution: at each step it either admits the next request whose
        arrival precedes the earliest ready batch (from the submission
        buffer or ``request_source``), or pops the policy-selected
        ready batch and executes it — so requests that arrive while an
        earlier batch occupies a shard are batched and scheduled
        normally instead of waiting for the next drain.

        ``request_source`` is an optional arrival-sorted iterable of
        requests (dicts of :meth:`submit` keywords, or
        ``(model, inputs[, arrival[, tenant]])`` tuples — request ids
        are engine-assigned, so finished ids are read off the returned
        report's records); it models streaming request I/O and is
        interleaved with buffered submissions by arrival time.

        Returns the serving report for the requests processed by *this*
        call; their outputs become available via :meth:`result`.
        """
        wall_start = time.perf_counter()
        cycles_before = self.dispatcher.shard_cycles()
        tenant_cycles_before = self.dispatcher.namespace_cycles()
        # Placement/shed/busy accounting is per run: entries from
        # caller-driven step() sequences are readable on
        # :attr:`placement_log` / :attr:`shed_log` until the next run
        # starts.
        self._placements.clear()
        self._shed.clear()
        self._prefix_events.clear()
        self._failed.clear()
        self._fault_log.clear()
        self._breaker_log.clear()
        self._gen_steps.clear()
        self._steals.clear()
        self._scaling_log.clear()
        self._slo_window.clear()
        self._window_sheds = 0
        self._shard_busy = {shard: 0.0 for shard in range(self.dispatcher.n_shards)}
        source = _RequestSource(request_source, self) if request_source is not None else None

        completed: List[CompletedRequest] = []
        buffer: List[InferenceRequest] = []
        head = 0
        try:
            while True:
                if self._submitted:
                    # Pick up submissions made since the last decision —
                    # including any issued while the previous batch was
                    # in flight — and merge them into the arrival-ordered
                    # feed.
                    fresh = sorted(
                        self._submitted, key=lambda r: (r.arrival, r.request_id)
                    )
                    self._submitted.clear()
                    buffer = sorted(
                        buffer[head:] + fresh, key=lambda r: (r.arrival, r.request_id)
                    )
                    head = 0
                    self._run_buffered = len(buffer)

                ready_at = self._earliest_work()
                feed_arrival = buffer[head].arrival if head < len(buffer) else None
                source_arrival = None if source is None else source.peek_arrival()

                next_arrival = None
                take_from_buffer = False
                if feed_arrival is not None and (
                    source_arrival is None or feed_arrival <= source_arrival
                ):
                    next_arrival, take_from_buffer = feed_arrival, True
                elif source_arrival is not None:
                    next_arrival = source_arrival

                if next_arrival is not None and (
                    ready_at is None or next_arrival <= ready_at
                ):
                    if take_from_buffer:
                        self._admit(buffer[head])
                        head += 1
                        self._run_buffered = len(buffer) - head
                    else:
                        self._admit(source.pop())  # type: ignore[union-attr]
                    continue
                if ready_at is None:
                    break
                # A drain may legitimately complete nothing — a failed
                # attempt re-queues its batch for a later wake — so
                # progress is measured in batches *consumed*, not
                # requests completed.
                consumed_before = self._work_consumed
                completed.extend(self._drain_one())
                if self._work_consumed == consumed_before:  # pragma: no cover
                    break  # defensive: ready_at implies a batch
        finally:
            self._run_buffered = 0

        cycles_after = self.dispatcher.shard_cycles()
        shard_cycles = {
            shard: cycles_after[shard] - cycles_before.get(shard, 0)
            for shard in cycles_after
        }
        tenant_cycles_after = self.dispatcher.namespace_cycles()
        run_tenants = {record.request.tenant for record in completed}
        # Namespaces persist on the shard traces across runs; report
        # only the tenants this run actually touched (nonzero delta or
        # a completed request), not every tenant ever served.
        tenant_cycles = {
            tenant: delta
            for tenant in tenant_cycles_after
            if (delta := tenant_cycles_after[tenant] - tenant_cycles_before.get(tenant, 0))
            or tenant in run_tenants
        }
        for tenant in run_tenants:
            tenant_cycles.setdefault(tenant, 0)
        return ServingReport(
            completed=tuple(completed),
            shard_cycles=shard_cycles,
            wall_seconds=time.perf_counter() - wall_start,
            tenant_cycles=tenant_cycles,
            tenants=self.tenants.configured(),
            placements=tuple(self._placements),
            shed=tuple(self._shed),
            shard_busy=dict(self._shard_busy),
            placement_policy=self.placement.name,
            prefix_events=tuple(self._prefix_events),
            cache_stats=self.cache_stats(),
            failed=tuple(self._failed),
            fault_events=tuple(self._fault_log),
            breaker_transitions=tuple(self._breaker_log),
            generation_steps=tuple(self._gen_steps),
            steals=tuple(self._steals),
            scaling_events=tuple(self._scaling_log),
        )

    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Unified stats of every cache namespace this engine touches.

        One :meth:`repro.store.CacheStore.stats` dict per namespace:
        the process-global store's namespaces (approximator tables,
        GEMM/MHP plan caches, calibration snapshots), the prefix
        cache's per-shard stores, and each shard backend's parameter
        cache (under ``nn.params.shard<N>``).
        """
        stats: Dict[str, Dict[str, int]] = dict(get_store().stats())
        if self.prefix_cache is not None:
            stats.update(self.prefix_cache.namespace_stats())
        if self.radix_cache is not None:
            stats.update(self.radix_cache.namespace_stats())
        for shard, backend in enumerate(self.dispatcher.backends):
            param_cache = getattr(backend, "param_cache", None)
            if param_cache is not None:
                stats[f"nn.params.shard{shard}"] = param_cache.stats()
        return stats

    def step(self) -> List[CompletedRequest]:
        """Admit everything buffered, execute at most one ready batch.

        The caller-driven flavour of the scheduler loop: interleave
        :meth:`submit` and :meth:`step` to model request admission
        while earlier batches are in flight.  Outputs are stored for
        :meth:`result` as usual; the returned records carry placement
        and timing.  (:meth:`run` is the drain-and-report flavour.)
        """
        for request in sorted(
            self._submitted, key=lambda r: (r.arrival, r.request_id)
        ):
            self._admit(request)
        self._submitted.clear()
        return self._drain_one()

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    def _admit(self, request: InferenceRequest) -> bool:
        """Admit one request, or shed it per its tenant's contract.

        Both gates are evaluated at the request's (simulated) arrival:
        the queue-depth cap against the tenant's currently queued
        requests, and — for ``shed_doomed`` tenants — the effective
        deadline against the best case of starting immediately on the
        fastest shard (a conservative bound: queueing is ignored, so
        only certainly-unmeetable requests shed).
        """
        config = self.tenants.get(request.tenant)
        if (
            config.max_queue_depth is not None
            and self.scheduler.tenant_pending(request.tenant)
            >= config.max_queue_depth
        ):
            self._shed.append(ShedRecord(request, "queue_full", request.arrival))
            self._window_sheds += 1
            return False
        if config.shed_doomed:
            due = request.deadline
            if due is None and config.slo_latency is not None:
                due = request.arrival + config.slo_latency
            if due is not None and self._best_case_finish(request) > due:
                self._shed.append(
                    ShedRecord(request, "deadline_doomed", request.arrival)
                )
                self._window_sheds += 1
                return False
        self.scheduler.admit(request)
        return True

    def _best_case_finish(self, request: InferenceRequest) -> float:
        """Earliest conceivable finish: run alone, immediately, on the
        fastest shard (0 service time where no estimate exists)."""
        profile = self._profile(
            model=request.model,
            tenant=request.tenant,
            batch_size=1,
            sample_shape=np.asarray(request.inputs).shape,
            ready_time=request.arrival,
        )
        best = None
        for view in self.dispatcher.shard_views():
            estimate = profile.estimate_cycles(view.config)
            service = (
                estimate / view.clock_hz
                if estimate is not None and view.clock_hz
                else 0.0
            )
            finish = request.arrival + service
            if best is None or finish < best:
                best = finish
        return best if best is not None else request.arrival

    def _profile(
        self, model, tenant, batch_size, sample_shape, ready_time, prefix_key=None
    ):
        """Build the placement-time view of a batch (or lone request)."""
        endpoint = self._endpoints[model]
        estimator = (
            endpoint.cost_model
            if endpoint.cost_model is not None
            else self._calibrator.estimate
        )
        resident: "tuple[int, ...]" = ()
        if prefix_key is not None and self.prefix_cache is not None:
            resident = self.prefix_cache.resident_shards(tenant, model, prefix_key)
        return BatchProfile(
            model=model,
            tenant=tenant,
            batch_size=batch_size,
            sample_shape=tuple(sample_shape),
            ready_time=ready_time,
            estimator=estimator,
            prefix_key=prefix_key,
            resident_shards=resident,
        )

    @property
    def placement_log(self) -> "tuple[PlacementDecision, ...]":
        """Placement decisions since the start of the last :meth:`run`."""
        return tuple(self._placements)

    @property
    def shed_log(self) -> "tuple[ShedRecord, ...]":
        """Requests shed since the start of the last :meth:`run`."""
        return tuple(self._shed)

    @property
    def prefix_log(self) -> "tuple[PrefixEvent, ...]":
        """Prefix-cache hit/miss events since the last :meth:`run` start."""
        return tuple(self._prefix_events)

    @property
    def failed_log(self) -> "tuple[FailureRecord, ...]":
        """Admitted requests lost to faults since the last :meth:`run` start."""
        return tuple(self._failed)

    @property
    def fault_log(self) -> "tuple[FaultRecord, ...]":
        """Failed/parked batch attempts since the last :meth:`run` start."""
        return tuple(self._fault_log)

    @property
    def breaker_log(self) -> "tuple[BreakerTransition, ...]":
        """Breaker state changes since the last :meth:`run` start."""
        return tuple(self._breaker_log)

    @property
    def shard_health(self) -> Dict[int, ShardHealth]:
        """The per-shard breakers (live objects; read-only use intended)."""
        return dict(self._health)

    @property
    def steal_log(self) -> "tuple[StealEvent, ...]":
        """Work-stealing migrations since the last :meth:`run` start."""
        return tuple(self._steals)

    @property
    def scaling_log(self) -> "tuple[ScalingEvent, ...]":
        """Autoscaler pool resizes since the last :meth:`run` start."""
        return tuple(self._scaling_log)

    @property
    def shard_stats(self) -> Dict[int, ShardStats]:
        """Per-shard live stats (drift EWMA, steal tallies; cumulative
        across runs, cleared by :meth:`reset`)."""
        return dict(self._shard_stats)

    @property
    def calibrator(self) -> CalibratingCostModel:
        """The engine's calibrating cost model.

        Persist it across restarts via
        :meth:`~repro.serving.cluster.CalibratingCostModel.to_dict` /
        :meth:`~repro.serving.cluster.CalibratingCostModel.load_dict`.
        """
        return self._calibrator

    def _next_retry_at(self) -> Optional[float]:
        """Wake time of the earliest queued retry, if any."""
        return self._retry_queue[0][0] if self._retry_queue else None

    def _decode_ready_at(self) -> Optional[float]:
        """Earliest instant a decode-pool sequence can take a step."""
        if not self._active:
            return None
        return min(seq.ready_time for seq in self._active)

    def _planned_ready_at(self) -> Optional[float]:
        """Ready time of the look-ahead round's next planned batch."""
        return self._planned[0][0].ready_time if self._planned else None

    def _earliest_work(self) -> Optional[float]:
        """Earliest instant anything is runnable: a ready batch from
        the scheduler, a batch the look-ahead round already planned, a
        retry whose backoff has a wake time, or a decode-pool sequence
        ready for its next token."""
        times = [
            t
            for t in (
                self.scheduler.earliest_ready(),
                self._planned_ready_at(),
                self._next_retry_at(),
                self._decode_ready_at(),
            )
            if t is not None
        ]
        return min(times) if times else None

    def _drain_one(self) -> List[CompletedRequest]:
        """Pop the earliest work unit, execute, store results.

        Retries tied with decode iterations or fresh batches run first
        (they are strictly older work), and decode iterations beat
        fresh batches in a tie.  Fresh work is either the next batch a
        look-ahead round already planned (older, so it wins ties
        against the scheduler) or the scheduler's policy-selected ready
        batch — which, under ``elastic.lookahead``, first harvests
        every batch ready at the same instant into a jointly planned
        round.  Returns the completions of the attempt — empty when
        the attempt failed and the batch was re-queued, parked, or
        abandoned (its requests then appear on :attr:`failed_log`).
        """
        ready = self.scheduler.earliest_ready()
        planned = self._planned_ready_at()
        fresh_times = [t for t in (ready, planned) if t is not None]
        fresh = min(fresh_times) if fresh_times else None
        retry = self._next_retry_at()
        decode = self._decode_ready_at()
        if (
            retry is not None
            and (fresh is None or retry <= fresh)
            and (decode is None or retry <= decode)
        ):
            wake, _seq, attempt, exclude, batch = heapq.heappop(self._retry_queue)
            self._work_consumed += 1
            completed = self._execute_batch(
                batch, attempt=attempt, exclude_shard=exclude
            )
        elif decode is not None and (fresh is None or decode <= fresh):
            self._work_consumed += 1
            completed = self._execute_decode()
        elif planned is not None and (ready is None or planned <= ready):
            batch, shard = self._planned.popleft()
            self._work_consumed += 1
            completed = self._execute_batch(batch, planned_shard=shard)
        else:
            if ready is None:
                return []
            batch = self.scheduler.pop_ready(ready)
            if batch is None:  # pragma: no cover — ready_at implies a batch
                return []
            self._work_consumed += 1
            if self.elastic.lookahead:
                self._plan_round(batch, ready)
                batch, shard = self._planned.popleft()
                completed = self._execute_batch(batch, planned_shard=shard)
            else:
                completed = self._execute_batch(batch)
        for record in completed:
            self._results[record.request.request_id] = record.outputs
        if completed:
            self._note_completions(completed)
        return completed

    def _plan_round(self, first: Batch, ready: float) -> None:
        """Harvest every batch ready at this instant; plan them jointly.

        The scheduling round of look-ahead placement: ``first`` (the
        batch the scheduler just popped) plus every further batch whose
        ready time has also arrived form one planning set.  Prefix- and
        radix-resident batches keep their cache affinity (the resident
        shard, exactly as :class:`PrefixAffinePlacement` would place
        them — work-stealing may break it later); the rest go through
        :meth:`LookaheadPlacement.plan` LPT list scheduling over
        horizons that already account for the affine assignments.
        Generation prefills are exempt (their profile depends on radix
        state at execution) and keep per-batch placement.  The planned
        ``(batch, shard)`` pairs queue for execution in plan order.
        """
        batches = [first]
        while True:
            nxt = self.scheduler.earliest_ready()
            if nxt is None or nxt > ready:
                break
            batch = self.scheduler.pop_ready(nxt)
            if batch is None:  # pragma: no cover — defensive
                break
            batches.append(batch)
        views = self._available_views(ready)
        if not views:
            # Everything will park through the normal placement path.
            self._planned.extend((batch, None) for batch in batches)
            return
        profiles: List[Optional[BatchProfile]] = []
        for batch in batches:
            endpoint = self._endpoints[batch.model]
            if (
                endpoint.generation_adapter is not None
                and batch.requests[0].generation is not None
            ):
                profiles.append(None)
                continue
            use_prefix = (
                batch.prefix_key is not None
                and self.prefix_cache is not None
                and endpoint.prefix_adapter is not None
            )
            profiles.append(
                self._profile(
                    model=batch.model,
                    tenant=batch.tenant,
                    batch_size=batch.size,
                    sample_shape=np.asarray(batch.requests[0].inputs).shape,
                    ready_time=batch.ready_time,
                    prefix_key=batch.prefix_key if use_prefix else None,
                )
            )
        horizons = {view.index: view.busy_until for view in views}
        assignments: List[Optional[int]] = [None] * len(batches)
        plan_indices: List[int] = []
        for i, profile in enumerate(profiles):
            if profile is None:
                continue
            if profile.resident_shards:
                resident = [
                    view
                    for view in views
                    if view.index in set(profile.resident_shards)
                ]
                if resident:
                    best = min(
                        resident, key=lambda v: (horizons[v.index], v.index)
                    )
                    assignments[i] = best.index
                    estimate = profile.estimate_cycles(best.config)
                    service = (
                        estimate / best.clock_hz
                        if estimate is not None and best.clock_hz
                        else 0.0
                    )
                    horizons[best.index] = (
                        max(profile.ready_time, horizons[best.index]) + service
                    )
                    continue
            plan_indices.append(i)
        if plan_indices:
            planning_views = [
                replace(view, busy_until=horizons[view.index]) for view in views
            ]
            shards = self._lookahead.plan(
                [profiles[i] for i in plan_indices], planning_views
            )
            for i, shard in zip(plan_indices, shards):
                assignments[i] = shard
        self._planned.extend(zip(batches, assignments))

    def _note_completions(self, completed: List[CompletedRequest]) -> None:
        """Feed the autoscaler's windowed SLO signal, maybe scale."""
        if not self.elastic.autoscale:
            return
        for record in completed:
            due = self._effective_deadline(record.request)
            self._slo_window.append(due is None or record.finish <= due)
        excess = len(self._slo_window) - self.elastic.autoscale_window
        if excess > 0:
            del self._slo_window[:excess]
        self._maybe_autoscale(max(record.finish for record in completed))

    def result(self, request_id: int, keep: bool = False) -> np.ndarray:
        """Output of a completed request (KeyError if not yet run).

        By default the output is handed over exactly once and released,
        so a long-lived engine does not accumulate every response it
        has ever produced; pass ``keep=True`` to leave it retrievable
        (it then stays resident until fetched without ``keep`` or
        :meth:`reset`).
        """
        if keep:
            return self._results[request_id]
        return self._results.pop(request_id)

    def reset(self) -> None:
        """Drop queued requests, stored results, shard occupancy and
        cached prefixes."""
        self._submitted.clear()
        self._run_buffered = 0
        self.scheduler.reset()
        self.placement.reset()
        self._calibrator.reset()
        self._results.clear()
        self._placements.clear()
        self._shed.clear()
        self._prefix_events.clear()
        self._shard_busy.clear()
        self._retry_queue.clear()
        self._retry_seq = 0
        self._failed.clear()
        self._fault_log.clear()
        self._breaker_log.clear()
        self._active.clear()
        self._gen_steps.clear()
        self._planned.clear()
        self._steals.clear()
        self._scaling_log.clear()
        self._slo_window.clear()
        self._window_sheds = 0
        self._last_scale_at = None
        for stats in self._shard_stats.values():
            stats.reset()
        for health in self._health.values():
            health.reset()
        self._last_arrival = 0.0
        if self.prefix_cache is not None:
            self.prefix_cache.clear()
        if self.radix_cache is not None:
            self.radix_cache.clear()
        self.dispatcher.reset()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _check_batched(
        endpoint: ModelEndpoint, outputs: np.ndarray, batch: Batch
    ) -> np.ndarray:
        """Validate that a stacked inference preserved the batch axis."""
        outputs = np.asarray(outputs)
        if outputs.ndim < 1 or outputs.shape[0] != batch.size:
            raise ValueError(
                f"endpoint {endpoint.name!r} returned output of shape "
                f"{outputs.shape} for a batch of {batch.size}; a "
                "batchable infer_fn must preserve the leading batch "
                "axis (register with batchable=False otherwise)"
            )
        return outputs

    def _health_of(self, shard: int) -> ShardHealth:
        """The shard's breaker (created lazily for autoscaler-added shards)."""
        health = self._health.get(shard)
        if health is None:
            health = self._health[shard] = ShardHealth(
                shard, self._breaker_config, on_transition=self._breaker_log.append
            )
        return health

    def _stats_of(self, shard: int) -> ShardStats:
        """The shard's live stats accumulator (created on first touch)."""
        stats = self._shard_stats.get(shard)
        if stats is None:
            stats = self._shard_stats[shard] = ShardStats(shard)
        return stats

    def _available_views(self, now: float) -> List[ShardView]:
        """Live shards whose breaker admits work at ``now``, with each
        view carrying its breaker state — so placement can filter open
        shards and price half-open probes pessimistically."""
        views = []
        for view in self.dispatcher.shard_views():
            health = self._health_of(view.index)
            if not health.available(now):
                continue
            views.append(replace(view, breaker=health.state))
        return views

    def _all_down(
        self, ready_time: float, batch_index: int, attempt: int, batch_size: int
    ) -> "Tuple[None, float]":
        """Every live breaker is open: park until the earliest expiry."""
        offline = self.dispatcher.offline_shards()
        expiries = [
            health.open_until
            for shard, health in self._health.items()
            if shard not in offline
        ]
        wake = min(expiries) if expiries else min(
            health.open_until for health in self._health.values()
        )
        self._fault_log.append(
            FaultRecord(
                kind="all_shards_down",
                shard=None,
                batch_index=batch_index,
                at=ready_time,
                attempt=attempt,
                action="park",
                requests=batch_size,
            )
        )
        return None, wake

    def _select_shard(
        self,
        ready_time: float,
        profile: BatchProfile,
        attempt: int,
        exclude_shard: Optional[int],
        batch_index: int,
        batch_size: int,
    ) -> "Tuple[Optional[int], Optional[float]]":
        """Pick the shard a ready batch executes on; park when none can.

        Returns ``(shard, None)`` on success or ``(None, wake)`` when
        every breaker is open — the caller re-schedules the work at
        ``wake`` (the earliest quarantine expiry) without consuming a
        retry.  The policy only sees live shards whose breaker admits
        work at the ready time (each view carries its breaker state, so
        half-open probes are priced pessimistically); a retry
        additionally avoids the shard of its failed attempt whenever an
        alternative exists.
        """
        healthy = self._available_views(ready_time)
        if not healthy:
            return self._all_down(ready_time, batch_index, attempt, batch_size)
        candidates = healthy
        if exclude_shard is not None and len(healthy) > 1:
            without = [view for view in healthy if view.index != exclude_shard]
            if without:
                candidates = without
        shard = self.placement.place(profile, candidates)
        if not 0 <= shard < self.dispatcher.n_shards:
            raise ValueError(
                f"placement policy {self.placement.name!r} returned shard "
                f"{shard} for a pool of {self.dispatcher.n_shards}"
            )
        return shard, None

    def _resolve_planned(
        self, batch: Batch, profile: BatchProfile, planned_shard: int
    ) -> "Tuple[Optional[int], Optional[float]]":
        """Hold or steal: re-validate a planned placement at execution.

        The look-ahead plan priced the round with calibrated estimates;
        by the time this batch reaches the head of the queue the world
        may have moved — the planned shard's breaker may have opened
        (or the autoscaler retired it), or its measured drift (EWMA of
        actual vs estimated service) may have blown the estimate.  With
        ``elastic.steal`` on, the batch is re-priced against every
        available shard with drift-corrected ETAs and migrates when the
        planned shard's ETA exceeds the best alternative's by
        ``steal_drift_threshold`` (``affinity_break_factor`` when the
        planned shard holds the batch's prefix — the cache entry then
        migrates through the store fabric with the batch, preserving
        the hit).  With stealing off, an unavailable planned shard
        falls back to the configured placement policy; an available one
        is honored unconditionally.
        """
        ready = batch.ready_time
        views = self._available_views(ready)
        if not views:
            return self._all_down(ready, batch.index, 0, batch.size)
        available = {view.index: view for view in views}
        if planned_shard in available and not self.elastic.steal:
            return planned_shard, None
        if planned_shard not in available and not self.elastic.steal:
            # Breaker opened (or shard retired) under the plan: the
            # batch re-places through the normal policy path.
            return self.placement.place(profile, views), None

        # Drift-corrected ETA per candidate: the planned service time,
        # scaled by the shard's measured actual/estimated ratio, on top
        # of its live horizon.  Half-open probes carry the worst known
        # service on top (mirroring CostAwarePlacement's pessimism).
        services: Dict[int, float] = {}
        for view in views:
            estimate = profile.estimate_cycles(view.config)
            if estimate is not None and view.clock_hz:
                services[view.index] = estimate / view.clock_hz
        unknown_service = max(services.values(), default=0.0)

        def eta_of(view: ShardView) -> float:
            service = services.get(view.index, unknown_service)
            if view.breaker == ShardHealth.HALF_OPEN:
                service += unknown_service
            service *= self._stats_of(view.index).drift
            return max(ready, view.busy_until) + service

        best = min(views, key=lambda view: (eta_of(view), view.index))
        resident = planned_shard in set(profile.resident_shards or ())

        if planned_shard not in available:
            target = best.index
            migrated = self._migrate_prefix(batch, resident, planned_shard, target)
            self._record_steal(
                batch, planned_shard, target, ready, "breaker",
                planned_eta=0.0, stolen_eta=eta_of(best), migrated=migrated,
            )
            return target, None

        if best.index == planned_shard:
            return planned_shard, None
        planned_eta = eta_of(available[planned_shard])
        best_eta = eta_of(best)
        factor = (
            self.elastic.affinity_break_factor
            if resident
            else self.elastic.steal_drift_threshold
        )
        if planned_eta <= factor * best_eta:
            return planned_shard, None
        migrated = self._migrate_prefix(batch, resident, planned_shard, best.index)
        self._record_steal(
            batch, planned_shard, best.index, ready,
            "affinity" if resident else "drift",
            planned_eta=planned_eta, stolen_eta=best_eta, migrated=migrated,
        )
        return best.index, None

    def _migrate_prefix(
        self, batch: Batch, resident: bool, from_shard: int, to_shard: int
    ) -> bool:
        """Move the batch's prefix entry with a steal (when it has one)."""
        if not resident or self.prefix_cache is None or batch.prefix_key is None:
            return False
        return self.prefix_cache.migrate(
            from_shard, to_shard, batch.tenant, batch.model, batch.prefix_key
        )

    def _record_steal(
        self,
        batch: Batch,
        from_shard: int,
        to_shard: int,
        at: float,
        reason: str,
        planned_eta: float,
        stolen_eta: float,
        migrated: bool,
    ) -> None:
        self._steals.append(
            StealEvent(
                batch_index=batch.index,
                model=batch.model,
                tenant=batch.tenant,
                from_shard=from_shard,
                to_shard=to_shard,
                at=at,
                reason=reason,
                planned_eta=planned_eta,
                stolen_eta=stolen_eta,
                cache_migrated=migrated,
            )
        )
        self._stats_of(from_shard).steals_out += 1
        self._stats_of(to_shard).steals_in += 1

    # ------------------------------------------------------------------
    # SLO-driven autoscaling
    # ------------------------------------------------------------------
    def _pool_power(self, extra_config: Optional[object] = None) -> float:
        """Priced power of the live pool (plus a candidate shard)."""
        from repro.hardware.power import power_watts

        total = 0.0
        for view in self.dispatcher.shard_views():
            if view.config is not None:
                total += power_watts(view.config)
        if extra_config is not None:
            total += power_watts(extra_config)
        return total

    def _power_admits(self, config: Optional[object]) -> bool:
        """Would adding a shard of ``config`` stay inside the budget?"""
        budget = self.elastic.power_budget_watts
        if budget is None or config is None:
            return True
        return self._pool_power(extra_config=config) <= budget

    def _maybe_autoscale(self, now: float) -> None:
        """Evaluate the windowed SLO/shed signals; grow or shrink once.

        Hysteresis is threefold: a full window of completions must have
        accumulated, ``autoscale_cooldown`` simulated seconds must have
        passed since the last action, and the grow/shrink attainment
        thresholds are separated by a dead band.  After any action the
        window restarts, so one bad burst triggers at most one resize
        per window.
        """
        config = self.elastic
        if len(self._slo_window) < config.autoscale_window:
            return
        if (
            self._last_scale_at is not None
            and now - self._last_scale_at < config.autoscale_cooldown
        ):
            return
        attainment = sum(self._slo_window) / len(self._slo_window)
        shed_rate = self._window_sheds / (
            self._window_sheds + len(self._slo_window)
        )
        acted = False
        if attainment < config.grow_below_attainment or shed_rate > 0.0:
            reason = (
                "slo_attainment"
                if attainment < config.grow_below_attainment
                else "shed_rate"
            )
            acted = self._grow_pool(now, attainment, shed_rate, reason)
        elif attainment >= config.shrink_above_attainment and shed_rate == 0.0:
            acted = self._shrink_pool(now, attainment, shed_rate)
        if acted:
            self._last_scale_at = now
            self._slo_window.clear()
            self._window_sheds = 0

    def _grow_pool(
        self, now: float, attainment: float, shed_rate: float, reason: str
    ) -> bool:
        """Reactivate a retired shard, or build one from the pool spec.

        Growth is refused at ``max_shards``, when the priced pool power
        would exceed ``power_budget_watts``, or when there is neither a
        retired shard to reactivate nor a :class:`ShardSpec` template
        to clone — so an unbudgeted homogeneous pool can still grow.
        """
        config = self.elastic
        if (
            config.max_shards is not None
            and self.dispatcher.n_live_shards >= config.max_shards
        ):
            return False
        offline = sorted(self.dispatcher.offline_shards())
        if offline:
            shard = offline[0]
            if not self._power_admits(self.dispatcher.config_of(shard)):
                return False
            self.dispatcher.activate_shard(shard)
        else:
            specs = self.dispatcher.specs
            if not specs:
                return False
            template = specs[-1]
            if not self._power_admits(template.config):
                return False
            shard = self.dispatcher.add_shard(template)
            self._health_of(shard)
        self._scaling_log.append(
            ScalingEvent(
                at=now,
                action="grow",
                shard=shard,
                reason=reason,
                slo_attainment=attainment,
                shed_rate=shed_rate,
                pool_power_watts=self._pool_power(),
            )
        )
        return True

    def _shrink_pool(
        self, now: float, attainment: float, shed_rate: float
    ) -> bool:
        """Retire the least-utilized live shard (never below min_shards).

        Retirement is graceful: the shard's horizon, traces and cached
        prefixes survive — it is only hidden from new placements, and a
        later grow reactivates it first.
        """
        live = sorted(view.index for view in self.dispatcher.shard_views())
        if len(live) <= self.elastic.min_shards:
            return False
        # Least busy this run; ties retire the higher index, so shard 0
        # (and with it a deterministic pool core) is retired last.
        victim = min(live, key=lambda s: (self._shard_busy.get(s, 0.0), -s))
        self.dispatcher.retire_shard(victim)
        self._scaling_log.append(
            ScalingEvent(
                at=now,
                action="shrink",
                shard=victim,
                reason="slo_headroom",
                slo_attainment=attainment,
                shed_rate=shed_rate,
                pool_power_watts=self._pool_power(),
            )
        )
        return True

    def _execute_batch(
        self,
        batch: Batch,
        attempt: int = 0,
        exclude_shard: Optional[int] = None,
        planned_shard: Optional[int] = None,
    ) -> List[CompletedRequest]:
        endpoint = self._endpoints[batch.model]
        if (
            endpoint.generation_adapter is not None
            and batch.requests[0].generation is not None
        ):
            return self._execute_prefill(batch, attempt, exclude_shard)
        use_prefix = (
            batch.prefix_key is not None
            and self.prefix_cache is not None
            and endpoint.prefix_adapter is not None
        )
        # Placement happens here — at batch-ready time, not acquire
        # time — so the policy sees every shard's busy horizon and the
        # batch's shape/cost profile (including prefix residency, for
        # affinity) before choosing.
        profile = self._profile(
            model=batch.model,
            tenant=batch.tenant,
            batch_size=batch.size,
            sample_shape=np.asarray(batch.requests[0].inputs).shape,
            ready_time=batch.ready_time,
            prefix_key=batch.prefix_key if use_prefix else None,
        )
        # With every breaker open the batch parks (no retry consumed)
        # until the earliest quarantine expiry re-admits a probe.  A
        # look-ahead-planned batch re-validates (and possibly steals)
        # its planned shard instead of re-placing from scratch.
        if planned_shard is not None and attempt == 0:
            shard, wake = self._resolve_planned(batch, profile, planned_shard)
        else:
            shard, wake = self._select_shard(
                batch.ready_time, profile, attempt, exclude_shard,
                batch.index, batch.size,
            )
        if shard is None:
            self._requeue(batch, wake, attempt, exclude_shard)
            return []
        backend = self.dispatcher.backends[shard]
        array = self.dispatcher.array_of(shard)

        start = max(batch.ready_time, self.dispatcher.busy_until.get(shard, 0.0))
        if self.faults is not None:
            doa = self.faults.crash_covering(shard, start)
            if doa is not None:
                # Dead on arrival: the shard is down when the batch
                # would start, so nothing executes — no cycles, no
                # cache effects — and the shard stays occupied through
                # its outage window.
                self._shard_down(shard, doa)
                self._attempt_failed(batch, attempt, shard, at=start)
                return []
        cycles_before = array.total_cycles if array is not None else 0

        # Attribute everything the batch records to its tenant's trace
        # namespace — per-tenant cycle accounting that works even in
        # aggregate-only retention mode.
        namespace = (
            array.trace.namespace(batch.tenant) if array is not None else nullcontext()
        )
        prefix_hit = False
        t0 = time.perf_counter()
        with namespace:
            if use_prefix or endpoint.batchable:
                stacked = np.stack([r.inputs for r in batch.requests])
            if use_prefix:
                # One cache decision for the whole batch: the batcher
                # keys groups on the prompt digest, so every request
                # here shares the prefix the entry is verified against.
                adapter = endpoint.prefix_adapter
                cache = self.prefix_cache
                prefix_tokens = adapter.prefix_tokens(batch.requests[0].inputs)
                entry = cache.lookup(
                    shard, batch.tenant, batch.model, batch.prefix_key, prefix_tokens
                )
                if entry is not None:
                    outputs = adapter.infer_hit(stacked, entry.payload, backend)
                    prefix_hit = True
                else:
                    outputs, payload = adapter.infer_cold(stacked, backend)
                    cache.insert(
                        shard,
                        PrefixEntry(
                            tenant=batch.tenant,
                            model=batch.model,
                            prefix_key=batch.prefix_key,
                            prefix_tokens=prefix_tokens,
                            payload=payload,
                        ),
                    )
                per_request = list(self._check_batched(endpoint, outputs, batch))
            elif endpoint.batchable:
                outputs = np.asarray(endpoint.infer_fn(stacked, backend))
                per_request = list(self._check_batched(endpoint, outputs, batch))
            else:
                per_request = [
                    np.asarray(endpoint.infer_fn(r.inputs, backend))
                    for r in batch.requests
                ]
        elapsed_wall = time.perf_counter() - t0

        if array is not None:
            batch_cycles = array.total_cycles - cycles_before
            duration = batch_cycles / array.config.clock_hz
        else:
            # Functional backends have no cycle model; charge the host
            # execution time so latency stays meaningful.
            batch_cycles = 0
            duration = elapsed_wall

        if self.faults is not None:
            # A slowdown stretches the timeline (results unchanged); a
            # crash striking inside the stretched window kills the
            # attempt: outputs are discarded, the partial occupancy is
            # charged as wasted work (the traced cycles already stand),
            # and the shard is held busy through its outage.
            duration *= self.faults.slowdown_factor(shard, start)
            crash = self.faults.crash_within(shard, start, start + duration)
            if crash is not None:
                self._shard_busy[shard] = self._shard_busy.get(shard, 0.0) + (
                    crash.at - start
                )
                self._shard_down(shard, crash)
                self._attempt_failed(batch, attempt, shard, at=crash.at)
                return []

        finish = start + duration
        self.dispatcher.busy_until[shard] = finish
        self._shard_busy[shard] = self._shard_busy.get(shard, 0.0) + duration
        self._health_of(shard).record_success(finish)
        # Feed the shard's drift EWMA (estimated vs actual service
        # seconds) only from full executions: a prefix hit's suffix-only
        # timing would read as phantom speedup against full-cost
        # estimates, exactly like the calibrator exclusion below.
        estimated_seconds = None
        if self.elastic.enabled and array is not None and not prefix_hit:
            estimate = profile.estimate_cycles(array.config)
            if estimate is not None and array.config.clock_hz:
                estimated_seconds = estimate / array.config.clock_hz
        self._stats_of(shard).observe(batch_cycles, duration, estimated_seconds)
        if array is not None and batch_cycles > 0 and not prefix_hit:
            # Feed the calibrating cost model: the next placement of
            # this (model, shape) estimates from traced ground truth.
            # Hit batches are excluded — their cycles reflect the
            # suffix-only execution, which would poison full-cost
            # estimates of the same (model, shape).
            self._calibrator.observe(
                batch.model, batch.size, profile.sample_shape,
                array.config, batch_cycles,
            )
        if use_prefix:
            cycles_saved = (
                int(endpoint.prefix_adapter.saved_cycles(batch.size, array.config))
                if prefix_hit and array is not None
                else 0
            )
            self._prefix_events.append(
                PrefixEvent(
                    batch_index=batch.index,
                    model=batch.model,
                    tenant=batch.tenant,
                    shard=shard,
                    batch_size=batch.size,
                    prefix_key=batch.prefix_key,
                    hit=prefix_hit,
                    cycles_saved=cycles_saved,
                )
            )
        self._placements.append(
            PlacementDecision(
                batch_index=batch.index,
                model=batch.model,
                tenant=batch.tenant,
                batch_size=batch.size,
                shard=shard,
                policy=self.placement.name,
                ready_time=batch.ready_time,
                start=start,
                finish=finish,
                batch_cycles=batch_cycles,
                attempt=attempt,
                recovered_from=exclude_shard if attempt > 0 else None,
            )
        )
        return [
            CompletedRequest(
                request=req,
                outputs=out,
                shard=shard,
                batch_index=batch.index,
                batch_size=batch.size,
                start=start,
                finish=finish,
                batch_cycles=batch_cycles,
                attempts=attempt + 1,
            )
            for req, out in zip(batch.requests, per_request)
        ]

    # ------------------------------------------------------------------
    # Generation: prefill batches and the continuous-batching decode pool
    # ------------------------------------------------------------------
    def _execute_prefill(
        self,
        batch: Batch,
        attempt: int = 0,
        exclude_shard: Optional[int] = None,
    ) -> List[CompletedRequest]:
        """Run a generation batch's prompt pass; members join the pool.

        Prefill batches flow through the same ready/retry machinery as
        classifier batches (same placement, breaker, park and crash
        handling); what differs is the payload: the adapter returns each
        member's first greedy token plus its K/V state, the radix cache
        (when configured) trims the prompt to its uncached suffix, and
        the surviving members enter :attr:`_active` for iteration-level
        decode instead of completing.
        """
        endpoint = self._endpoints[batch.model]
        adapter = endpoint.generation_adapter
        prompts = np.stack([r.inputs for r in batch.requests])
        prompt_len = int(prompts.shape[1])
        # Batches are keyed on the prompt digest, so members share one
        # prompt; verify rather than assume, because the warm path
        # broadcasts sequence 0's cached rows across the whole batch.
        uniform = bool(np.all(prompts == prompts[0]))
        use_radix = self.radix_cache is not None and uniform
        resident: "tuple[int, ...]" = ()
        if use_radix:
            resident = self.radix_cache.resident_shards(
                batch.tenant, batch.model, prompts[0]
            )
        estimator = (
            endpoint.cost_model
            if endpoint.cost_model is not None
            else self._calibrator.estimate
        )
        profile = BatchProfile(
            model=batch.model,
            tenant=batch.tenant,
            batch_size=batch.size,
            sample_shape=(prompt_len,),
            ready_time=batch.ready_time,
            estimator=estimator,
            prefix_key=batch.prefix_key if use_radix else None,
            resident_shards=resident,
        )
        shard, wake = self._select_shard(
            batch.ready_time, profile, attempt, exclude_shard, batch.index, batch.size
        )
        if shard is None:
            self._requeue(batch, wake, attempt, exclude_shard)
            return []
        backend = self.dispatcher.backends[shard]
        array = self.dispatcher.array_of(shard)

        start = max(batch.ready_time, self.dispatcher.busy_until.get(shard, 0.0))
        if self.faults is not None:
            doa = self.faults.crash_covering(shard, start)
            if doa is not None:
                self._shard_down(shard, doa)
                self._attempt_failed(batch, attempt, shard, at=start)
                return []
        cycles_before = array.total_cycles if array is not None else 0

        cached_len, cached = 0, None
        if use_radix:
            # Cap the usable prefix one short of the prompt: at least
            # one suffix row must execute to produce the next-token
            # logits.
            cached_len, cached = self.radix_cache.lookup(
                shard, batch.tenant, batch.model, prompts[0],
                max_len=prompt_len - 1,
            )
            if cached_len == 0:
                cached = None

        namespace = (
            array.trace.namespace(batch.tenant) if array is not None else nullcontext()
        )
        t0 = time.perf_counter()
        with namespace:
            first_tokens, state = adapter.prefill(prompts, backend, cached=cached)
        elapsed_wall = time.perf_counter() - t0

        if array is not None:
            batch_cycles = array.total_cycles - cycles_before
            duration = batch_cycles / array.config.clock_hz
        else:
            batch_cycles = 0
            duration = elapsed_wall

        if self.faults is not None:
            duration *= self.faults.slowdown_factor(shard, start)
            crash = self.faults.crash_within(shard, start, start + duration)
            if crash is not None:
                self._shard_busy[shard] = self._shard_busy.get(shard, 0.0) + (
                    crash.at - start
                )
                self._shard_down(shard, crash)
                self._attempt_failed(batch, attempt, shard, at=crash.at)
                return []

        finish = start + duration
        self.dispatcher.busy_until[shard] = finish
        self._shard_busy[shard] = self._shard_busy.get(shard, 0.0) + duration
        self._health_of(shard).record_success(finish)
        self._stats_of(shard).observe(batch_cycles, duration)
        if use_radix:
            if cached_len < prompt_len:
                # Donate the full prompt's rows back (incremental
                # capture: a future prompt extending this one prefills
                # only its new suffix).
                self.radix_cache.insert(
                    shard, batch.tenant, batch.model, prompts[0],
                    adapter.capture(state, prompt_len),
                )
            cycles_saved = 0
            if cached_len > 0 and array is not None:
                cycles_saved = int(
                    adapter.prefill_cycles(batch.size, prompt_len, 0, array.config)
                    - adapter.prefill_cycles(
                        batch.size, prompt_len, cached_len, array.config
                    )
                )
            self._prefix_events.append(
                PrefixEvent(
                    batch_index=batch.index,
                    model=batch.model,
                    tenant=batch.tenant,
                    shard=shard,
                    batch_size=batch.size,
                    prefix_key=batch.prefix_key,
                    hit=cached_len > 0,
                    cycles_saved=cycles_saved,
                )
            )
        self._placements.append(
            PlacementDecision(
                batch_index=batch.index,
                model=batch.model,
                tenant=batch.tenant,
                batch_size=batch.size,
                shard=shard,
                policy=self.placement.name,
                ready_time=batch.ready_time,
                start=start,
                finish=finish,
                batch_cycles=batch_cycles,
                attempt=attempt,
                recovered_from=exclude_shard if attempt > 0 else None,
            )
        )

        completed: List[CompletedRequest] = []
        states = state.split()
        for j, request in enumerate(batch.requests):
            seq = ActiveSequence(
                request=request,
                state=states[j],
                generated=[int(first_tokens[j])],
                ready_time=finish,
                first_start=start,
                batch_cycles=batch_cycles,
                attempts=attempt + 1,
                last_shard=shard,
                last_batch_index=batch.index,
                last_batch_size=batch.size,
            )
            if seq.finished:
                completed.append(self._retire(seq, finish))
            else:
                self._active.append(seq)
        return completed

    def _execute_decode(self) -> List[CompletedRequest]:
        """One decode iteration: re-form the batch, step, retire.

        The batch is rebuilt from the live pool every iteration — the
        earliest-ready sequence leads, and every compatible sequence
        (same model, tenant and position; decode batches never mix
        tenants or models) joins up to the engine's batch-size cap.
        The iteration starts once every member is ready, so sequences
        whose prefills finished at different instants merge instead of
        decoding in isolated lockstep groups.  Prompts MAY differ
        across members — that is what continuous batching buys.

        The step itself runs on a stacked *copy* of the member caches
        (see :meth:`~repro.serving.generation.GenerationAdapter.decode`),
        so a fault-injected attempt discards cleanly: member state is
        only extended after the attempt survives every fault check.
        """
        lead = min(
            self._active, key=lambda s: (s.ready_time, s.request.request_id)
        )
        group = [
            seq
            for seq in self._active
            if seq.request.model == lead.request.model
            and seq.request.tenant == lead.request.tenant
            and seq.position == lead.position
        ]
        group.sort(key=lambda s: (s.ready_time, s.request.request_id))
        group = group[: self.scheduler.assembler.max_batch_size]
        ready = max(seq.ready_time for seq in group)
        batch_index = self.scheduler.next_batch_index()
        endpoint = self._endpoints[lead.request.model]
        adapter = endpoint.generation_adapter
        size = len(group)
        position = lead.position
        attempt = min(seq.attempt for seq in group)
        exclude = next(
            (s.exclude_shard for s in group if s.exclude_shard is not None), None
        )
        profile = BatchProfile(
            model=lead.request.model,
            tenant=lead.request.tenant,
            batch_size=size,
            sample_shape=(position,),
            ready_time=ready,
            estimator=lambda p, config: adapter.decode_cycles(
                p.batch_size, position, config
            ),
        )
        shard, wake = self._select_shard(
            ready, profile, attempt, exclude, batch_index, size
        )
        if shard is None:
            # Park in place: members stay pooled and wake when the
            # earliest breaker re-admits a probe; no retry consumed.
            for seq in group:
                seq.ready_time = wake
            return []
        backend = self.dispatcher.backends[shard]
        array = self.dispatcher.array_of(shard)

        start = max(ready, self.dispatcher.busy_until.get(shard, 0.0))
        if self.faults is not None:
            doa = self.faults.crash_covering(shard, start)
            if doa is not None:
                self._shard_down(shard, doa)
                self._decode_attempt_failed(group, batch_index, shard, at=start)
                return []
        cycles_before = array.total_cycles if array is not None else 0

        tokens = np.array([seq.generated[-1] for seq in group], dtype=np.int64)
        namespace = (
            array.trace.namespace(lead.request.tenant)
            if array is not None
            else nullcontext()
        )
        t0 = time.perf_counter()
        with namespace:
            next_tokens, step_kv = adapter.decode(
                [seq.state for seq in group], tokens, backend
            )
        elapsed_wall = time.perf_counter() - t0

        if array is not None:
            batch_cycles = array.total_cycles - cycles_before
            duration = batch_cycles / array.config.clock_hz
        else:
            batch_cycles = 0
            duration = elapsed_wall

        if self.faults is not None:
            duration *= self.faults.slowdown_factor(shard, start)
            crash = self.faults.crash_within(shard, start, start + duration)
            if crash is not None:
                # The step ran on a scratch copy; dropping step_kv IS
                # the rollback.  Partial occupancy is charged as wasted
                # work (the traced cycles already stand).
                self._shard_busy[shard] = self._shard_busy.get(shard, 0.0) + (
                    crash.at - start
                )
                self._shard_down(shard, crash)
                self._decode_attempt_failed(group, batch_index, shard, at=crash.at)
                return []

        finish = start + duration
        self.dispatcher.busy_until[shard] = finish
        self._shard_busy[shard] = self._shard_busy.get(shard, 0.0) + duration
        self._health_of(shard).record_success(finish)
        self._stats_of(shard).observe(batch_cycles, duration)
        self._gen_steps.append(
            DecodeStepRecord(
                step_index=batch_index,
                model=lead.request.model,
                tenant=lead.request.tenant,
                shard=shard,
                batch_size=size,
                position=position,
                cycles=batch_cycles,
                start=start,
                finish=finish,
                attempt=attempt,
            )
        )
        self._placements.append(
            PlacementDecision(
                batch_index=batch_index,
                model=lead.request.model,
                tenant=lead.request.tenant,
                batch_size=size,
                shard=shard,
                policy=self.placement.name,
                ready_time=ready,
                start=start,
                finish=finish,
                batch_cycles=batch_cycles,
                attempt=attempt,
                recovered_from=exclude if attempt > 0 else None,
            )
        )

        completed: List[CompletedRequest] = []
        for j, seq in enumerate(group):
            for layer in range(seq.state.n_layers):
                seq.state.extend(
                    layer, step_kv[layer][0][j : j + 1], step_kv[layer][1][j : j + 1]
                )
            seq.generated.append(int(next_tokens[j]))
            seq.ready_time = finish
            seq.attempt = 0
            seq.exclude_shard = None
            seq.batch_cycles += batch_cycles
            seq.last_shard = shard
            seq.last_batch_index = batch_index
            seq.last_batch_size = size
            if seq.finished:
                self._active.remove(seq)
                completed.append(self._retire(seq, finish))
        return completed

    def _retire(self, seq: ActiveSequence, finish: float) -> CompletedRequest:
        """Turn a finished sequence into its completion record.

        A retiring sequence donates its whole history — prompt plus all
        generated tokens but the last, exactly the ``state.pos`` K/V
        rows it holds — to the radix cache, so a follow-up request that
        replays the transcript prefills only its new suffix.
        """
        if self.radix_cache is not None:
            history = np.concatenate(
                [
                    np.asarray(seq.request.inputs, dtype=np.int64),
                    np.asarray(seq.generated[:-1], dtype=np.int64),
                ]
            )
            adapter = self._endpoints[seq.request.model].generation_adapter
            self.radix_cache.insert(
                seq.last_shard,
                seq.request.tenant,
                seq.request.model,
                history,
                adapter.capture(seq.state, seq.state.pos),
            )
        return CompletedRequest(
            request=seq.request,
            outputs=np.asarray(seq.generated, dtype=np.int64),
            shard=seq.last_shard,
            batch_index=seq.last_batch_index,
            batch_size=seq.last_batch_size,
            start=seq.first_start,
            finish=finish,
            batch_cycles=seq.batch_cycles,
            attempts=seq.attempts,
        )

    def _decode_attempt_failed(
        self, group: List[ActiveSequence], batch_index: int, shard: int, at: float
    ) -> None:
        """One decode iteration died on ``shard`` at simulated ``at``.

        The per-sequence analogue of :meth:`_attempt_failed`: each
        member keeps its own attempt counter (reset by every successful
        step), so a freshly joined sequence is not charged for retries
        an older member already burned.  Members over budget or whose
        backoff wake would overshoot their effective deadline leave the
        pool as :class:`FailureRecord` entries; survivors stay pooled
        with a bumped attempt, a backoff wake time and the failed shard
        excluded from their next placement.
        """
        self._health_of(shard).record_failure(at)
        attempt_floor = min(seq.attempt for seq in group)
        survivors = 0
        for seq in group:
            seq.attempts += 1
            if seq.attempt >= self.retry_policy.max_retries:
                self._active.remove(seq)
                self._fail_requests(
                    (seq.request,), "max_retries", at, shard, seq.attempts
                )
                continue
            wake = at + self.retry_policy.backoff(seq.attempt)
            due = self._effective_deadline(seq.request)
            if due is not None and wake > due:
                self._active.remove(seq)
                self._fail_requests(
                    (seq.request,), "retry_deadline", at, shard, seq.attempts
                )
                continue
            seq.attempt += 1
            seq.ready_time = wake
            seq.exclude_shard = shard
            survivors += 1
        self._fault_log.append(
            FaultRecord(
                kind="crash",
                shard=shard,
                batch_index=batch_index,
                at=at,
                attempt=attempt_floor,
                action="retry" if survivors else "abandon",
                requests=survivors if survivors else len(group),
            )
        )

    # ------------------------------------------------------------------
    # Fault handling: failure accounting, retry queue, deadlines
    # ------------------------------------------------------------------
    def _shard_down(self, shard: int, crash: ShardCrash) -> None:
        """Hold a crashed shard's horizon through its outage window, so
        every subsequent placement sees it occupied until recovery."""
        self.dispatcher.busy_until[shard] = max(
            self.dispatcher.busy_until.get(shard, 0.0), crash.until
        )

    def _attempt_failed(
        self, batch: Batch, attempt: int, shard: int, at: float
    ) -> None:
        """One batch attempt died on ``shard`` at simulated ``at``.

        Feeds the shard's breaker, then decides per batch: abandon when
        the retry budget is spent, shed the requests whose effective
        deadline precedes the backoff wake time (a doomed retry is
        dropped, not looped), and re-queue the survivors as a new
        attempt that will re-place on the remaining healthy shards.
        Failed attempts record *nothing* in the placement, prefix or
        calibration logs — those are written exactly once, by the
        attempt that completes — so retried traffic is never
        double-attributed.
        """
        self._health_of(shard).record_failure(at)
        failed_attempts = attempt + 1
        if attempt >= self.retry_policy.max_retries:
            self._fault_log.append(
                FaultRecord(
                    kind="crash",
                    shard=shard,
                    batch_index=batch.index,
                    at=at,
                    attempt=attempt,
                    action="abandon",
                    requests=batch.size,
                )
            )
            self._fail_requests(
                batch.requests, "max_retries", at, shard, failed_attempts
            )
            return
        wake = at + self.retry_policy.backoff(attempt)
        survivors: List[InferenceRequest] = []
        for request in batch.requests:
            due = self._effective_deadline(request)
            if due is not None and wake > due:
                self._fail_requests(
                    (request,), "retry_deadline", at, shard, failed_attempts
                )
            else:
                survivors.append(request)
        if not survivors:
            self._fault_log.append(
                FaultRecord(
                    kind="crash",
                    shard=shard,
                    batch_index=batch.index,
                    at=at,
                    attempt=attempt,
                    action="abandon",
                    requests=batch.size,
                )
            )
            return
        self._fault_log.append(
            FaultRecord(
                kind="crash",
                shard=shard,
                batch_index=batch.index,
                at=at,
                attempt=attempt,
                action="retry",
                requests=len(survivors),
            )
        )
        self._requeue(
            replace(batch, requests=tuple(survivors)), wake, attempt + 1, shard
        )

    def _requeue(
        self, batch: Batch, wake: float, attempt: int, exclude_shard: Optional[int]
    ) -> None:
        """Queue ``batch`` to re-execute at simulated time ``wake``."""
        if batch.ready_time != wake:
            batch = replace(batch, ready_time=wake)
        heapq.heappush(
            self._retry_queue,
            (wake, self._retry_seq, attempt, exclude_shard, batch),
        )
        self._retry_seq += 1

    def _fail_requests(
        self,
        requests: "Iterable[InferenceRequest]",
        reason: str,
        at: float,
        shard: Optional[int],
        attempts: int,
    ) -> None:
        for request in requests:
            self._failed.append(
                FailureRecord(
                    request=request,
                    reason=reason,
                    at=at,
                    shard=shard,
                    attempts=attempts,
                )
            )

    def _effective_deadline(self, request: InferenceRequest) -> Optional[float]:
        """Explicit deadline, else arrival + tenant SLO, else None —
        the same resolution the report's SLO accounting applies."""
        if request.deadline is not None:
            return request.deadline
        config = self.tenants.get(request.tenant)
        if config.slo_latency is not None:
            return request.arrival + config.slo_latency
        return None
