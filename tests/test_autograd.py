"""Autograd engine tests: gradients checked against finite differences."""

import numpy as np
import pytest

from repro.nn.autograd import Tensor, cross_entropy, mse_loss
from repro.nn import functional as F


def numerical_grad(fn, x, eps=1e-6):
    """Central-difference gradient of scalar fn at numpy point x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(x)
        flat[i] = orig - eps
        lo = fn(x)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def check_grad(op, shape, seed=0, atol=1e-4):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=shape)
    t = Tensor(x.copy(), requires_grad=True)
    out = op(t)
    loss = out.sum() if out.size > 1 else out
    loss.backward()
    num = numerical_grad(lambda arr: float(op(Tensor(arr)).sum().data), x.copy())
    assert np.allclose(t.grad, num, atol=atol), f"grad mismatch max {np.abs(t.grad - num).max()}"


class TestElementwiseGrads:
    def test_add(self):
        check_grad(lambda t: t + 2.0, (3, 4))

    def test_mul(self):
        check_grad(lambda t: t * 3.0, (3, 4))

    def test_mul_tensors(self):
        rng = np.random.default_rng(1)
        other = Tensor(rng.normal(size=(3, 4)))
        check_grad(lambda t: t * other, (3, 4))

    def test_div(self):
        check_grad(lambda t: t / 2.5, (2, 3))

    def test_rsub(self):
        check_grad(lambda t: 1.0 - t, (4,))

    def test_pow(self):
        check_grad(lambda t: (t * t + 1.0) ** 0.5, (3,))

    def test_relu(self):
        check_grad(lambda t: t.relu(), (5, 5), seed=2)

    def test_gelu(self):
        check_grad(lambda t: t.gelu(), (4, 4), seed=3)

    def test_tanh(self):
        check_grad(lambda t: t.tanh(), (4,))

    def test_sigmoid(self):
        check_grad(lambda t: t.sigmoid(), (4,))

    def test_exp_log(self):
        check_grad(lambda t: (t.exp() + 1.0).log(), (3, 3))


class TestShapeAndReduceGrads:
    def test_matmul(self):
        rng = np.random.default_rng(4)
        b = Tensor(rng.normal(size=(4, 2)))
        check_grad(lambda t: t @ b, (3, 4))

    def test_matmul_batched(self):
        rng = np.random.default_rng(5)
        b = Tensor(rng.normal(size=(2, 4, 3)))
        check_grad(lambda t: t @ b, (2, 5, 4))

    def test_broadcast_add_grad_shapes(self):
        a = Tensor(np.zeros((3, 4)), requires_grad=True)
        b = Tensor(np.zeros(4), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        assert np.all(b.grad == 3)

    def test_reshape(self):
        check_grad(lambda t: t.reshape(6), (2, 3))

    def test_transpose(self):
        check_grad(lambda t: t.transpose(1, 0), (2, 3))

    def test_getitem(self):
        check_grad(lambda t: t[1:], (4, 3))

    def test_sum_axis(self):
        check_grad(lambda t: t.sum(axis=1), (3, 4))

    def test_mean_tuple_axis(self):
        check_grad(lambda t: t.mean(axis=(0, 1), keepdims=True), (2, 3, 4))

    def test_max_axis(self):
        check_grad(lambda t: t.max(axis=1), (3, 5), seed=6)

    def test_softmax(self):
        check_grad(lambda t: t.softmax(axis=-1), (3, 5), seed=7)

    def test_log_softmax(self):
        check_grad(lambda t: t.log_softmax(axis=-1), (3, 5), seed=8)


class TestGraphMechanics:
    def test_grad_accumulates_over_uses(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward()
        assert x.grad[0] == pytest.approx(7.0)

    def test_backward_requires_scalar(self):
        x = Tensor(np.zeros((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward()

    def test_no_grad_tracking_without_flag(self):
        x = Tensor(np.array([1.0]))
        y = x * 2
        assert not y.requires_grad

    def test_zero_grad(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2).backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        a = x * 2
        b = x * 5
        ((a + b) * 1.0).backward()
        assert x.grad[0] == pytest.approx(7.0)


class TestLosses:
    def test_cross_entropy_matches_manual(self):
        logits = Tensor(np.array([[2.0, 0.0], [0.0, 2.0]]), requires_grad=True)
        labels = np.array([0, 1])
        loss = cross_entropy(logits, labels)
        manual = -np.log(np.exp(2) / (np.exp(2) + 1))
        assert loss.item() == pytest.approx(manual)

    def test_cross_entropy_grad(self):
        rng = np.random.default_rng(9)
        x = rng.normal(size=(4, 3))
        labels = np.array([0, 1, 2, 1])
        t = Tensor(x.copy(), requires_grad=True)
        cross_entropy(t, labels).backward()
        num = numerical_grad(
            lambda arr: float(cross_entropy(Tensor(arr), labels).data), x.copy()
        )
        assert np.allclose(t.grad, num, atol=1e-4)

    def test_mse(self):
        pred = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = mse_loss(pred, np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)


class TestFunctionalGrads:
    def test_conv2d_grads(self):
        rng = np.random.default_rng(10)
        x_data = rng.normal(size=(2, 2, 5, 5))
        w = Tensor(rng.normal(size=(3, 2, 3, 3)), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        x = Tensor(x_data.copy(), requires_grad=True)
        out = F.conv2d(x, w, b, padding=1)
        out.sum().backward()
        num = numerical_grad(
            lambda arr: float(F.conv2d(Tensor(arr), Tensor(w.data), Tensor(b.data), padding=1).sum().data),
            x_data.copy(),
        )
        assert np.allclose(x.grad, num, atol=1e-4)

    def test_conv2d_weight_grad(self):
        rng = np.random.default_rng(11)
        x = Tensor(rng.normal(size=(1, 1, 4, 4)))
        w_data = rng.normal(size=(2, 1, 3, 3))
        w = Tensor(w_data.copy(), requires_grad=True)
        b = Tensor(np.zeros(2), requires_grad=True)
        F.conv2d(x, w, b).sum().backward()
        num = numerical_grad(
            lambda arr: float(F.conv2d(x, Tensor(arr), Tensor(b.data)).sum().data),
            w_data.copy(),
        )
        assert np.allclose(w.grad, num, atol=1e-4)

    def test_conv2d_shape_validation(self):
        with pytest.raises(ValueError):
            F.conv2d(
                Tensor(np.zeros((1, 2, 4, 4))),
                Tensor(np.zeros((2, 3, 3, 3))),
                Tensor(np.zeros(2)),
            )

    def test_maxpool_grad(self):
        rng = np.random.default_rng(12)
        x_data = rng.normal(size=(1, 2, 4, 4))
        x = Tensor(x_data.copy(), requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        num = numerical_grad(
            lambda arr: float(F.max_pool2d(Tensor(arr), 2).sum().data), x_data.copy()
        )
        assert np.allclose(x.grad, num, atol=1e-4)

    def test_avgpool_grad(self):
        rng = np.random.default_rng(13)
        x_data = rng.normal(size=(1, 2, 4, 4))
        x = Tensor(x_data.copy(), requires_grad=True)
        F.avg_pool2d(x, 2).sum().backward()
        assert np.allclose(x.grad, 0.25)

    def test_im2col_matches_direct_conv(self):
        rng = np.random.default_rng(14)
        x = rng.normal(size=(1, 1, 5, 5))
        w = rng.normal(size=(1, 1, 3, 3))
        cols, (oh, ow) = F.im2col(x, 3)
        out = (cols @ w.reshape(1, -1).T).reshape(1, oh, ow)
        # Direct correlation for reference.
        ref = np.zeros((3, 3))
        for i in range(3):
            for j in range(3):
                ref[i, j] = np.sum(x[0, 0, i : i + 3, j : j + 3] * w[0, 0])
        assert np.allclose(out[0], ref)

    def test_embedding_grad(self):
        table = Tensor(np.random.default_rng(15).normal(size=(5, 3)), requires_grad=True)
        idx = np.array([[0, 1], [1, 4]])
        F.embedding_lookup(table, idx).sum().backward()
        assert table.grad[1].sum() == pytest.approx(2 * 3.0, abs=1e-9)
        assert np.all(table.grad[2] == 0)
