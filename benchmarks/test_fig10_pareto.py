"""Bench E7 — Fig. 10: latency/power design space and Pareto frontiers.

Reproduced claims:

* designs with more MACs achieve lower latency;
* designs with >=16 MACs sit on or near the Pareto frontier;
* the linear-computation optima are also (near-)optimal for the newly
  enabled nonlinear computation;
* nonlinear execution draws less power than linear execution at the
  same design point (only the diagonal PEs toggle).
"""

import pytest

from repro.evaluation.pareto_sweep import (
    evaluate_design,
    figure10_pareto,
    frontier_mac_counts,
    linear_optima_serve_nonlinear,
    mac16_near_frontier,
)
from repro.evaluation.reporting import format_table


def _format(sweep, mode):
    rows = []
    for dim, entry in sweep.items():
        for p in entry["front"]:
            rows.append([dim, p.label, round(p.latency_s * 1e6, 2), round(p.power_w, 2)])
    return format_table(
        ["matrix dim", "design", "latency (us)", "power (W)"],
        rows,
        title=f"Fig. 10 Pareto frontier ({mode})",
    )


def test_fig10_linear(benchmark, print_artifact):
    sweep = benchmark(figure10_pareto, "linear")
    print_artifact(_format(sweep, "linear"))

    assert mac16_near_frontier(sweep)
    # High-MAC designs dominate the frontier's fast end.
    for dim, entry in sweep.items():
        fastest = min(entry["front"], key=lambda p: p.latency_s)
        assert fastest.macs >= 16, dim
    # More MACs -> lower latency at the same grid.
    a = evaluate_design(8, 8, 512, "linear")
    b = evaluate_design(8, 32, 512, "linear")
    assert b.latency_s < a.latency_s


def test_fig10_nonlinear(benchmark, print_artifact):
    sweep = benchmark(figure10_pareto, "nonlinear")
    print_artifact(_format(sweep, "nonlinear"))

    assert max(frontier_mac_counts(sweep)) >= 16
    # Nonlinear mode draws less power than linear at the same point.
    lin = evaluate_design(8, 16, 128, "linear")
    non = evaluate_design(8, 16, 128, "nonlinear")
    assert non.power_w < lin.power_w


def test_fig10_cross_mode_claim(benchmark, print_artifact):
    holds = benchmark(linear_optima_serve_nonlinear)
    print_artifact(
        "Linear-optimal (>=16 MAC) designs near the nonlinear frontier: "
        f"{holds}"
    )
    assert holds
