"""Quickstart: linear and nonlinear operations on one ONE-SA instance.

Runs a GEMM and a GELU on the paper's 64-PE / 16-MAC design point,
shows the bit-accurate results, the cycle accounting, and the effect of
the CPWL granularity knob.

    python examples/quickstart.py
"""

import numpy as np

from repro.core import sweep_granularity
from repro.systolic import ONE_SA_PAPER_CONFIG, SystolicArray
from repro.systolic.timing import peak_gnfs, peak_gops

rng = np.random.default_rng(0)


def main() -> None:
    array = SystolicArray(ONE_SA_PAPER_CONFIG)
    print(f"Design point: {array.config.describe()}")
    print(f"  peak linear throughput:    {peak_gops(array.config):.1f} GOPS")
    print(f"  peak nonlinear throughput: {peak_gnfs(array.config):.1f} GNFS")
    print(f"  on-chip buffers:           {array.config.total_buffer_bytes / 1024:.1f} KB")

    # --- Linear: a GEMM, bit-accurate INT16 ---------------------------
    a = rng.normal(size=(96, 128))
    b = rng.normal(size=(128, 64))
    c = array.matmul(a, b)
    err = np.max(np.abs(c - a @ b))
    print(f"\nGEMM 96x128x64: max |error| vs float = {err:.4f} (INT16 datapath)")

    # --- Nonlinear: GELU through IPF + MHP -----------------------------
    x = rng.normal(size=(64, 64))
    from repro.core.functions import gelu

    for granularity in (0.1, 0.25, 1.0):
        y = array.apply_nonlinear("gelu", x, granularity)
        err = np.max(np.abs(y - gelu(x)))
        print(f"GELU at granularity {granularity:<4}: max |error| = {err:.4f}")

    # --- Cycle accounting ----------------------------------------------
    print("\nTraced cycles by event kind:")
    for kind, cycles in array.trace.cycles_by_kind().items():
        print(f"  {kind:<8} {cycles:>8} cycles")
    print(f"Total wall-clock at {array.config.clock_hz / 1e6:.0f} MHz: "
          f"{array.elapsed_seconds() * 1e6:.1f} us")

    # --- Granularity selection (Section V-B) ---------------------------
    print("\nGranularity sweep for GELU (error vs L3 table storage):")
    for choice in sweep_granularity("gelu"):
        print(
            f"  g={choice.granularity:<5} segments={choice.n_segments:<4} "
            f"storage={choice.storage_bytes:>4} B  max|err|={choice.max_abs_error:.4f} "
            f"shift-path={choice.shift_path}"
        )


if __name__ == "__main__":
    main()
