"""Workload descriptors: exact op inventories of the evaluated networks.

The performance experiments (Fig. 1, Table IV) need the *op counts and
layer shapes* of ResNet-50, BERT-base and a GCN — not their weights.  A
:class:`Workload` is an ordered list of :class:`GemmOp` and
:class:`NonlinearOp` entries built from the published architectures;
the timing model maps each entry to cycles on a design point, and the
profiler derives the Fig. 1 op mix from the same list.

Composite nonlinearities are charged the number of array events their
CPWL decomposition needs (see :mod:`repro.core.nonlinear_ops`):
ReLU/GELU/tanh/sigmoid = 1 MHP pass, softmax = 3 (exp, reciprocal,
scale), layernorm = 4 (square, rsqrt, scale, affine), batchnorm = 1
(folded affine).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.systolic.config import SystolicConfig
from repro.systolic.timing import CycleBreakdown, gemm_cycles, nonlinear_cycles

#: MHP passes per composite nonlinear kind.
MHP_PASSES = {
    "relu": 1,
    "gelu": 1,
    "tanh": 1,
    "sigmoid": 1,
    "softmax": 3,
    "layernorm": 4,
    "batchnorm": 1,
    "multiply": 1,
    "add": 1,
}


@dataclass(frozen=True)
class GemmOp:
    """One matrix multiplication ``(M, K) @ (K, N)``, repeated ``count``."""

    m: int
    k: int
    n: int
    count: int = 1
    label: str = "gemm"

    @property
    def macs(self) -> int:
        return self.m * self.k * self.n * self.count


@dataclass(frozen=True)
class NonlinearOp:
    """One elementwise/composite op over an ``(M, N)`` matrix."""

    kind: str
    m: int
    n: int
    count: int = 1
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in MHP_PASSES:
            raise ValueError(
                f"unknown nonlinear kind {self.kind!r}; known: {sorted(MHP_PASSES)}"
            )

    @property
    def elements(self) -> int:
        return self.m * self.n * self.count

    @property
    def mhp_passes(self) -> int:
        return MHP_PASSES[self.kind]


@dataclass
class Workload:
    """An ordered op inventory for one network inference."""

    name: str
    ops: List[object] = field(default_factory=list)

    def add_gemm(self, m: int, k: int, n: int, count: int = 1, label: str = "gemm"):
        self.ops.append(GemmOp(m, k, n, count, label))
        return self

    def add_nonlinear(self, kind: str, m: int, n: int, count: int = 1, label: str = ""):
        self.ops.append(NonlinearOp(kind, m, n, count, label or kind))
        return self

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def gemm_ops(self) -> List[GemmOp]:
        return [op for op in self.ops if isinstance(op, GemmOp)]

    @property
    def nonlinear_ops(self) -> List[NonlinearOp]:
        return [op for op in self.ops if isinstance(op, NonlinearOp)]

    @property
    def total_macs(self) -> int:
        return sum(op.macs for op in self.gemm_ops)

    @property
    def total_nonlinear_elements(self) -> int:
        return sum(op.elements for op in self.nonlinear_ops)

    def elements_by_kind(self) -> Dict[str, int]:
        """Nonlinear element counts per kind (the Fig. 1 numerators)."""
        out: Dict[str, int] = {}
        for op in self.nonlinear_ops:
            out[op.kind] = out.get(op.kind, 0) + op.elements
        return out

    # ------------------------------------------------------------------
    # Timing on a design point
    # ------------------------------------------------------------------
    def latency_breakdown(self, config: SystolicConfig) -> CycleBreakdown:
        """Total cycles of the whole inference on a design point."""
        total = CycleBreakdown(0, 0, 0, 0)
        for op in self.ops:
            if isinstance(op, GemmOp):
                one = gemm_cycles(config, op.m, op.k, op.n)
                for _ in range(op.count):
                    total = total.merged(one)
            else:
                one = nonlinear_cycles(config, op.m, op.n)
                passes = op.mhp_passes * op.count
                for _ in range(passes):
                    total = total.merged(one)
        return total

    def latency_seconds(self, config: SystolicConfig) -> float:
        return self.latency_breakdown(config).seconds(config.clock_hz)

    def throughput_gops(self, config: SystolicConfig) -> float:
        """Achieved GOPS over the whole inference (the Table IV metric).

        Consistent with the paper's accounting, the op count includes
        both the GEMM MACs and the elementwise work absorbed into MHPs.
        """
        seconds = self.latency_seconds(config)
        ops = self.total_macs + self.total_nonlinear_elements
        return ops / seconds / 1e9 if seconds else 0.0

    def gemm_cycle_share(self, config: SystolicConfig) -> float:
        """Fraction of cycles spent in GEMM (power-model phase weight)."""
        gemm = 0
        nl = 0
        for op in self.ops:
            if isinstance(op, GemmOp):
                gemm += gemm_cycles(config, op.m, op.k, op.n).total * op.count
            else:
                nl += (
                    nonlinear_cycles(config, op.m, op.n).total
                    * op.mhp_passes
                    * op.count
                )
        total = gemm + nl
        return gemm / total if total else 0.0


# ---------------------------------------------------------------------------
# Published architectures
# ---------------------------------------------------------------------------


def _conv_gemm(
    wl: Workload,
    spatial: int,
    in_c: int,
    out_c: int,
    kernel: int,
    stride: int = 1,
    label: str = "conv",
) -> int:
    """Append an im2col conv GEMM; returns the output spatial size."""
    out_spatial = spatial // stride
    m = out_spatial * out_spatial
    wl.add_gemm(m, in_c * kernel * kernel, out_c, label=label)
    return out_spatial


def resnet50_workload(image_size: int = 224, n_classes: int = 1000) -> Workload:
    """ResNet-50 (He et al.) inference, batch 1, as im2col GEMMs.

    Stage layout: 7×7/2 stem, max-pool /2, then bottleneck stages
    [3, 4, 6, 3] with base widths 64/128/256/512 and expansion 4.  Each
    conv is followed by batchnorm (folded affine) and, per the
    architecture, a ReLU; residual adds are elementwise adds.
    Total ≈ 2.05 G MACs at 224×224 — double-counted as mul+add this is
    the ~4.1 GOP figure the paper's throughput implies.
    """
    wl = Workload("resnet50")
    spatial = image_size // 2  # stem stride 2
    wl.add_gemm(spatial * spatial, 3 * 7 * 7, 64, label="stem")
    wl.add_nonlinear("batchnorm", spatial * spatial, 64, label="stem.bn")
    wl.add_nonlinear("relu", spatial * spatial, 64, label="stem.relu")
    spatial //= 2  # max-pool

    in_c = 64
    stage_blocks = (3, 4, 6, 3)
    stage_width = (64, 128, 256, 512)
    for stage, (blocks, width) in enumerate(zip(stage_blocks, stage_width)):
        out_c = width * 4
        for block in range(blocks):
            stride = 2 if (block == 0 and stage > 0) else 1
            label = f"s{stage + 1}b{block + 1}"
            # 1x1 reduce
            spatial_out = spatial // stride
            wl.add_gemm(spatial_out * spatial_out, in_c * 1, width, label=f"{label}.c1")
            wl.add_nonlinear("batchnorm", spatial_out * spatial_out, width)
            wl.add_nonlinear("relu", spatial_out * spatial_out, width)
            # 3x3
            wl.add_gemm(
                spatial_out * spatial_out, width * 9, width, label=f"{label}.c2"
            )
            wl.add_nonlinear("batchnorm", spatial_out * spatial_out, width)
            wl.add_nonlinear("relu", spatial_out * spatial_out, width)
            # 1x1 expand
            wl.add_gemm(
                spatial_out * spatial_out, width * 1, out_c, label=f"{label}.c3"
            )
            wl.add_nonlinear("batchnorm", spatial_out * spatial_out, out_c)
            if block == 0:
                # projection shortcut
                wl.add_gemm(
                    spatial_out * spatial_out, in_c * 1, out_c, label=f"{label}.proj"
                )
                wl.add_nonlinear("batchnorm", spatial_out * spatial_out, out_c)
            wl.add_nonlinear("add", spatial_out * spatial_out, out_c)
            wl.add_nonlinear("relu", spatial_out * spatial_out, out_c)
            spatial = spatial_out
            in_c = out_c
    # global average pool is a reduction; classifier + softmax
    wl.add_gemm(1, in_c, n_classes, label="fc")
    wl.add_nonlinear("softmax", 1, n_classes, label="softmax")
    return wl


def bert_base_workload(seq_len: int = 64) -> Workload:
    """BERT-base (12 layers, hidden 768, heads 12, FF 3072), batch 1.

    The default sequence length of 64 matches the op magnitude implied
    by the paper's Table IV (latency × throughput ≈ 5.5 G ops).
    """
    wl = Workload("bert-base")
    hidden = 768
    heads = 12
    head_dim = hidden // heads
    ff = 3072
    for layer in range(12):
        tag = f"l{layer}"
        wl.add_gemm(seq_len, hidden, hidden, count=3, label=f"{tag}.qkv")
        wl.add_gemm(seq_len, head_dim, seq_len, count=heads, label=f"{tag}.scores")
        wl.add_nonlinear("softmax", seq_len, seq_len, count=heads, label=f"{tag}.sm")
        wl.add_gemm(seq_len, seq_len, head_dim, count=heads, label=f"{tag}.ctx")
        wl.add_gemm(seq_len, hidden, hidden, label=f"{tag}.out")
        wl.add_nonlinear("add", seq_len, hidden, label=f"{tag}.res1")
        wl.add_nonlinear("layernorm", seq_len, hidden, label=f"{tag}.ln1")
        wl.add_gemm(seq_len, hidden, ff, label=f"{tag}.ff1")
        wl.add_nonlinear("gelu", seq_len, ff, label=f"{tag}.gelu")
        wl.add_gemm(seq_len, ff, hidden, label=f"{tag}.ff2")
        wl.add_nonlinear("add", seq_len, hidden, label=f"{tag}.res2")
        wl.add_nonlinear("layernorm", seq_len, hidden, label=f"{tag}.ln2")
    wl.add_gemm(1, hidden, 2, label="classifier")
    wl.add_nonlinear("softmax", 1, 2, label="softmax")
    return wl


def gcn_workload(
    n_nodes: int = 16384,
    n_features: int = 500,
    hidden: int = 128,
    n_classes: int = 16,
    avg_degree: int = 30,
) -> Workload:
    """Two-layer GCN inference on a graph of the paper's op magnitude.

    Feature transform ``X W`` is a dense GEMM; aggregation
    ``A_hat (X W)`` is charged at the edge count (sparse matmul executed
    as gathered dense rows).  Defaults give ≈1.2 G MACs, matching the
    Table IV implied op count.
    """
    wl = Workload("gcn")
    # Layer 1: transform then aggregate (one gathered row per edge).
    wl.add_gemm(n_nodes, n_features, hidden, label="gc1.transform")
    wl.add_gemm(n_nodes, avg_degree, hidden, label="gc1.aggregate")
    wl.add_nonlinear("relu", n_nodes, hidden, label="gc1.relu")
    # Layer 2.
    wl.add_gemm(n_nodes, hidden, n_classes, label="gc2.transform")
    wl.add_gemm(n_nodes, avg_degree, n_classes, label="gc2.aggregate")
    wl.add_nonlinear("softmax", n_nodes, n_classes, label="softmax")
    return wl


def transformer_serving_workload(
    batch: int,
    seq_len: int,
    dim: int,
    heads: int,
    ff_dim: int,
    n_layers: int,
    n_classes: int = 2,
) -> Workload:
    """Op inventory of one *batched* encoder inference (serving shapes).

    Mirrors how the serving engine executes a stacked batch: the linear
    projections fold the batch into single ``(batch * seq_len)``-row
    GEMMs, while the attention matmuls and softmaxes stay per sample
    and head.  Feed it to
    :func:`repro.serving.cluster.workload_cost_model` for closed-form
    cost-aware placement of TinyBERT-family endpoints::

        cost = workload_cost_model(
            lambda b, shape: transformer_serving_workload(b, 8, 8, 2, 16, 1)
        )
        engine.register("bert", model, cost_model=cost)
    """
    wl = Workload("transformer-batch")
    rows = batch * seq_len
    head_dim = dim // heads
    pairs = batch * heads
    for layer in range(n_layers):
        tag = f"l{layer}"
        wl.add_gemm(rows, dim, dim, count=4, label=f"{tag}.proj")
        wl.add_gemm(seq_len, head_dim, seq_len, count=pairs, label=f"{tag}.scores")
        wl.add_nonlinear("softmax", seq_len, seq_len, count=pairs, label=f"{tag}.sm")
        wl.add_gemm(seq_len, seq_len, head_dim, count=pairs, label=f"{tag}.ctx")
        wl.add_nonlinear("add", rows, dim, count=2, label=f"{tag}.res")
        wl.add_nonlinear("layernorm", rows, dim, count=2, label=f"{tag}.ln")
        wl.add_gemm(rows, dim, ff_dim, label=f"{tag}.ff1")
        wl.add_nonlinear("gelu", rows, ff_dim, label=f"{tag}.gelu")
        wl.add_gemm(rows, ff_dim, dim, label=f"{tag}.ff2")
    wl.add_gemm(batch, dim, n_classes, label="classifier")
    return wl


def transformer_prefix_workload(
    batch: int,
    seq_len: int,
    prefix_len: int,
    dim: int,
    heads: int,
    ff_dim: int,
    n_layers: int,
    n_classes: int = 2,
) -> Workload:
    """Op inventory of a batched encoder inference with a cached prefix.

    The warm (prefix-hit) serving path only executes the suffix rows:
    the Q/K/V/output projections and the feed-forward GEMMs shrink to
    ``batch * (seq_len - prefix_len)`` rows, the attention matmuls keep
    their full ``seq_len`` reduction axis but only produce suffix rows,
    and the softmaxes run once per suffix row.  The classifier still
    sees every pooled row (the prefix rows come from the cache, not
    from compute).  Feed to
    :func:`repro.serving.cluster.workload_cost_model` to price hit
    batches for cost-aware placement.
    """
    if not 0 < prefix_len < seq_len:
        raise ValueError(
            f"prefix_len must be in (0, seq_len), got {prefix_len} of {seq_len}"
        )
    wl = Workload("transformer-prefix-hit")
    suffix = seq_len - prefix_len
    rows = batch * suffix
    head_dim = dim // heads
    pairs = batch * heads
    for layer in range(n_layers):
        tag = f"l{layer}"
        wl.add_gemm(rows, dim, dim, count=4, label=f"{tag}.proj")
        wl.add_gemm(suffix, head_dim, seq_len, count=pairs, label=f"{tag}.scores")
        wl.add_nonlinear("softmax", suffix, seq_len, count=pairs, label=f"{tag}.sm")
        wl.add_gemm(suffix, seq_len, head_dim, count=pairs, label=f"{tag}.ctx")
        wl.add_nonlinear("add", rows, dim, count=2, label=f"{tag}.res")
        wl.add_nonlinear("layernorm", rows, dim, count=2, label=f"{tag}.ln")
        wl.add_gemm(rows, dim, ff_dim, label=f"{tag}.ff1")
        wl.add_nonlinear("gelu", rows, ff_dim, label=f"{tag}.gelu")
        wl.add_gemm(rows, ff_dim, dim, label=f"{tag}.ff2")
    wl.add_gemm(batch, dim, n_classes, label="classifier")
    return wl


def transformer_prefix_savings(
    batch: int,
    seq_len: int,
    prefix_len: int,
    dim: int,
    heads: int,
    ff_dim: int,
    n_layers: int,
    config: SystolicConfig,
) -> int:
    """Traced cycles a prefix hit saves, in closed form — *exactly*.

    Covers precisely the operations the ``ArrayBackend`` traces — the
    projection/attention/feed-forward GEMMs and the GELU MHP pass
    (softmax, layernorm, residuals and the embedding/pool stages run on
    the CPWL fast path and record no array cycles) — as the difference
    between the cold and the suffix-only shapes, using the same
    :func:`~repro.systolic.timing.gemm_cycles` /
    :func:`~repro.systolic.timing.nonlinear_cycles` closed forms the
    trace records.  The property suite asserts
    ``cold_total_cycles - hit_total_cycles`` equals this value for
    random shapes and design points.
    """
    if not 0 < prefix_len < seq_len:
        raise ValueError(
            f"prefix_len must be in (0, seq_len), got {prefix_len} of {seq_len}"
        )
    if dim % heads:
        raise ValueError(f"heads ({heads}) must divide dim ({dim})")
    suffix = seq_len - prefix_len
    head_dim = dim // heads
    full_rows = batch * seq_len
    suffix_rows = batch * suffix
    pairs = batch * heads

    def gemm(m: int, k: int, n: int) -> int:
        return gemm_cycles(config, m, k, n).total

    def mhp(m: int, n: int) -> int:
        return nonlinear_cycles(config, m, n).total

    per_layer = (
        # Q, K, V and output projections: suffix rows only.
        4 * (gemm(full_rows, dim, dim) - gemm(suffix_rows, dim, dim))
        # Attention score rows (one traced GEMM per sample x head).
        + pairs * (gemm(seq_len, head_dim, seq_len) - gemm(suffix, head_dim, seq_len))
        # Context rows against the full (cached + fresh) V.
        + pairs * (gemm(seq_len, seq_len, head_dim) - gemm(suffix, seq_len, head_dim))
        # Feed-forward GEMMs and the GELU MHP pass.
        + (gemm(full_rows, dim, ff_dim) - gemm(suffix_rows, dim, ff_dim))
        + (mhp(full_rows, ff_dim) - mhp(suffix_rows, ff_dim))
        + (gemm(full_rows, ff_dim, dim) - gemm(suffix_rows, ff_dim, dim))
    )
    return n_layers * per_layer


def transformer_prefill_cycles(
    batch: int,
    prompt_len: int,
    cached_len: int,
    dim: int,
    heads: int,
    ff_dim: int,
    n_layers: int,
    vocab: int,
    config: SystolicConfig,
) -> int:
    """Traced cycles of a generation *prefill* pass, in closed form.

    Covers exactly the ``ArrayBackend``-traced work of
    ``TinyBERT.prefill``: per layer the Q/K/V/out projections over the
    un-cached suffix rows, the per-(sample × head) score and context
    GEMMs against all ``prompt_len`` key rows, the feed-forward GEMMs
    and the GELU MHP pass — plus the tied-embedding logits GEMM.
    ``cached_len = 0`` is a cold prefill; ``0 < cached_len <
    prompt_len`` is a radix-cache hit computing only the suffix.
    """
    if not 0 <= cached_len < prompt_len:
        raise ValueError(
            f"cached_len must be in [0, prompt_len), got {cached_len} of {prompt_len}"
        )
    if dim % heads:
        raise ValueError(f"heads ({heads}) must divide dim ({dim})")
    suffix = prompt_len - cached_len
    head_dim = dim // heads
    rows = batch * suffix
    pairs = batch * heads

    def gemm(m: int, k: int, n: int) -> int:
        return gemm_cycles(config, m, k, n).total

    def mhp(m: int, n: int) -> int:
        return nonlinear_cycles(config, m, n).total

    per_layer = (
        4 * gemm(rows, dim, dim)
        + pairs * gemm(suffix, head_dim, prompt_len)
        + pairs * gemm(suffix, prompt_len, head_dim)
        + gemm(rows, dim, ff_dim)
        + mhp(rows, ff_dim)
        + gemm(rows, ff_dim, dim)
    )
    return n_layers * per_layer + gemm(batch, dim, vocab)


def transformer_decode_step_cycles(
    batch: int,
    position: int,
    dim: int,
    heads: int,
    ff_dim: int,
    n_layers: int,
    vocab: int,
    config: SystolicConfig,
) -> int:
    """Traced cycles of one batched decode step, in closed form.

    ``position`` is the K/V cache length *before* the step (the global
    position of the token being fed), so the attention GEMMs run one
    query row against ``position + 1`` key/value rows.  Per layer: the
    four projections over one row per sequence, one score and one
    context GEMM per (sample × head) pair, the feed-forward GEMMs and
    the GELU MHP pass; plus the tied-embedding logits GEMM.  The
    generation test suite asserts per-step traced-cycle deltas equal
    this value exactly.
    """
    if position < 1:
        raise ValueError(f"position must be >= 1 (post-prefill), got {position}")
    if dim % heads:
        raise ValueError(f"heads ({heads}) must divide dim ({dim})")
    keys = position + 1
    head_dim = dim // heads
    pairs = batch * heads

    def gemm(m: int, k: int, n: int) -> int:
        return gemm_cycles(config, m, k, n).total

    def mhp(m: int, n: int) -> int:
        return nonlinear_cycles(config, m, n).total

    per_layer = (
        4 * gemm(batch, dim, dim)
        + pairs * gemm(1, head_dim, keys)
        + pairs * gemm(1, keys, head_dim)
        + gemm(batch, dim, ff_dim)
        + mhp(batch, ff_dim)
        + gemm(batch, ff_dim, dim)
    )
    return n_layers * per_layer + gemm(batch, dim, vocab)


#: Registry used by the comparison and profiling experiments.
def paper_workloads() -> Dict[str, Workload]:
    """The three Table IV workloads with the paper's evaluation shapes."""
    return {
        "resnet50": resnet50_workload(),
        "bert-base": bert_base_workload(),
        "gcn": gcn_workload(),
    }
