"""L3 data-addressing module (Fig. 5).

The module sits in the L3 output path.  As the previous operation's
output ``C`` (now re-interpreted as the nonlinear input ``X``) streams
through, each element passes the **data-shift** stage (segment index by
arithmetic shift — segment lengths are powers of two), then the
**scale** stage (``s = max[min(s, s_max), s_min]`` capping, plus the
multiply path for non-power-of-two granularities), and the scaled index
addresses the preloaded **k/b buffers**; the fetched parameters leave
through the k FIFO and Reg FIFO toward DRAM, laid out exactly like a
conventional GEMM output.

The functional math lives in :mod:`repro.core.ipf`; this module adds the
structural model: FIFO staging, throughput, and traffic accounting used
by the timing model and the cycle-level tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ipf import IPFResult, fetch_parameters
from repro.core.segment_table import QuantizedSegmentTable
from repro.fixedpoint import QFormat
from repro.systolic.buffers import Fifo, ParameterStore


@dataclass
class AddressingStats:
    """Traffic and occupancy statistics of one addressing run."""

    elements: int
    capped_low: int
    capped_high: int
    shift_path: bool
    fifo_high_water: int
    cycles: int


class DataAddressing:
    """Structural model of the L3 data-addressing datapath.

    Parameters
    ----------
    fmt:
        Datapath fixed-point format.
    port_width:
        Elements per cycle the module accepts — the L3 output port width
        (``l3_out_width`` of the design point); the module is pipelined
        at one batch per cycle.
    fifo_depth:
        Depth of the C/k/Reg FIFOs (the 32 B region → 16 INT16 entries).
    """

    def __init__(self, fmt: QFormat, port_width: int = 4, fifo_depth: int = 16):
        self.fmt = fmt
        self.port_width = port_width
        self.c_fifo = Fifo("C", fifo_depth)
        self.k_fifo = Fifo("k", fifo_depth)
        self.reg_fifo = Fifo("Reg", fifo_depth)
        self.params = None  # type: QuantizedSegmentTable | None

    def preload(self, qtable: QuantizedSegmentTable, store: ParameterStore) -> bool:
        """Load a segment table into the k/b buffers.

        Returns True when a preload transaction actually occurred (the
        table was not already resident in ``store``).
        """
        self.params = qtable
        return store.ensure(
            f"{qtable.table.name}@{qtable.table.granularity}",
            qtable.n_segments,
        )

    def run(self, x_raw: np.ndarray) -> tuple[IPFResult, AddressingStats]:
        """Stream the matrix ``X`` through the addressing datapath.

        Functionally identical to :func:`repro.core.ipf.fetch_parameters`;
        additionally models the FIFO staging batch by batch and reports
        cycle count (``ceil(elements / port_width)`` plus the three-stage
        pipeline latency) and capping statistics.
        """
        if self.params is None:
            raise RuntimeError("no segment table preloaded into the k/b buffers")
        x_raw = np.asarray(x_raw)
        result = fetch_parameters(x_raw, self.params, self.fmt)

        flat = x_raw.reshape(-1)
        n = flat.size
        # FIFO staging: each cycle, up to port_width elements enter the
        # C FIFO, are shifted/scaled, and their parameters leave through
        # the k and Reg FIFOs.  Because drain matches fill rate, the
        # high-water mark stays at one batch.
        for start in range(0, min(n, 4 * self.port_width), self.port_width):
            batch = flat[start : start + self.port_width]
            for item in batch:
                self.c_fifo.push(item)
            for item in batch:
                self.c_fifo.pop()
                self.k_fifo.push(item)
                self.reg_fifo.push(item)
            for _ in batch:
                self.k_fifo.pop()
                self.reg_fifo.pop()

        segments = result.segments
        table = self.params.table
        capped_low = int(np.count_nonzero(segments == 0))
        capped_high = int(np.count_nonzero(segments == table.n_segments - 1))
        cycles = -(-n // self.port_width) + 3  # pipeline depth 3 (Fig. 5)
        stats = AddressingStats(
            elements=n,
            capped_low=capped_low,
            capped_high=capped_high,
            shift_path=result.shift_path,
            fifo_high_water=max(
                self.c_fifo.high_water,
                self.k_fifo.high_water,
                self.reg_fifo.high_water,
            ),
            cycles=cycles,
        )
        return result, stats
