"""Cycle-level simulator tests: bit-exactness and dataflow properties.

These are the validation tests DESIGN.md promises: the event-level PE
grid must agree with the vectorized functional paths bit for bit, and
its measured behaviour must back the closed-form timing model's
structural assumptions (who computes, who forwards, how long).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fixedpoint import INT16, fixed_hadamard_mac, fixed_matmul, quantize
from repro.systolic.config import SystolicConfig
from repro.systolic.cycle_sim import CycleSimulator
from repro.systolic.pe import PEMode, ProcessingElement


def cfg(p=4, m=4):
    return SystolicConfig(pe_rows=p, pe_cols=p, macs_per_pe=m)


class TestProcessingElement:
    def make_pe(self, mode):
        pe = ProcessingElement(row=0, col=0, macs=4, fmt=INT16)
        pe.configure(mode)
        return pe

    def test_gemm_mode_controls(self):
        pe = self.make_pe(PEMode.GEMM)
        assert pe.c1_forward and pe.c2_compute

    def test_computation_mode_controls(self):
        pe = self.make_pe(PEMode.COMPUTATION)
        assert not pe.c1_forward and pe.c2_compute

    def test_transmission_mode_controls(self):
        pe = self.make_pe(PEMode.TRANSMISSION)
        assert pe.c1_forward and not pe.c2_compute

    def test_gemm_accumulates(self):
        pe = self.make_pe(PEMode.GEMM)
        a = quantize(np.array([1.0, 2.0, 0.0, 0.0]), INT16).astype(np.int64)
        b = quantize(np.array([3.0, 0.5, 0.0, 0.0]), INT16).astype(np.int64)
        pe.step(a, b)
        pe.step(a, b)
        from repro.fixedpoint import dequantize

        assert dequantize(pe.writeback(), INT16) == pytest.approx(8.0)

    def test_transmission_never_computes(self):
        pe = self.make_pe(PEMode.TRANSMISSION)
        a = np.ones(4, dtype=np.int64)
        pe.step(a, a)
        pe.step(a, a)
        assert pe.stats.mac_ops == 0
        assert pe.stats.forwards > 0

    def test_forward_is_one_cycle_delayed(self):
        pe = self.make_pe(PEMode.GEMM)
        first = np.array([1], dtype=np.int64)
        second = np.array([2], dtype=np.int64)
        east, _ = pe.step(first, None)
        assert east is None  # nothing registered yet
        east, _ = pe.step(second, None)
        assert east is first

    def test_computation_pe_emits_per_pair(self):
        pe = self.make_pe(PEMode.COMPUTATION)
        one = np.int64(1) << 8
        x = quantize(np.array([2.0]), INT16).astype(np.int64)
        pe.step(np.array([x[0], one]), np.array([quantize(0.5, INT16), quantize(1.0, INT16)]).astype(np.int64))
        assert len(pe.output_buffer) == 1
        from repro.fixedpoint import dequantize

        assert dequantize(np.array([pe.output_buffer[0]]), INT16)[0] == pytest.approx(2.0)


class TestGemmCycleSim:
    @pytest.mark.parametrize("m,k,n", [(4, 8, 4), (3, 7, 2), (4, 4, 4), (1, 16, 1), (2, 1, 3)])
    def test_bit_exact_vs_reference(self, m, k, n):
        rng = np.random.default_rng(m * 100 + k * 10 + n)
        a = quantize(rng.normal(size=(m, k)), INT16)
        b = quantize(rng.normal(size=(k, n)), INT16)
        sim = CycleSimulator(cfg())
        result = sim.run_gemm_tile(a, b)
        assert np.array_equal(result.output, fixed_matmul(a, b, INT16))

    def test_all_output_pes_active(self):
        rng = np.random.default_rng(0)
        a = quantize(rng.normal(size=(4, 8)), INT16)
        b = quantize(rng.normal(size=(8, 4)), INT16)
        result = CycleSimulator(cfg()).run_gemm_tile(a, b)
        assert result.active_pes == 16

    def test_mac_count_matches_problem(self):
        rng = np.random.default_rng(1)
        a = quantize(rng.normal(size=(4, 8)), INT16)
        b = quantize(rng.normal(size=(8, 4)), INT16)
        result = CycleSimulator(cfg()).run_gemm_tile(a, b)
        assert result.mac_ops_by_pe.sum() == 4 * 8 * 4

    def test_cycle_count_close_to_model(self):
        """Measured tile cycles ≈ compute + skew of the closed form."""
        sim = CycleSimulator(cfg())
        a = quantize(np.random.default_rng(2).normal(size=(4, 32)), INT16)
        b = quantize(np.random.default_rng(3).normal(size=(32, 4)), INT16)
        result = sim.run_gemm_tile(a, b)
        chunks = 32 // 4
        assert result.cycles == chunks + 2 * (4 - 1) + 1

    def test_oversized_tile_rejected(self):
        sim = CycleSimulator(cfg())
        with pytest.raises(ValueError):
            sim.run_gemm_tile(np.zeros((5, 4)), np.zeros((4, 5)))

    def test_shape_mismatch_rejected(self):
        sim = CycleSimulator(cfg())
        with pytest.raises(ValueError):
            sim.run_gemm_tile(np.zeros((4, 4)), np.zeros((5, 4)))

    @given(st.integers(min_value=1, max_value=30))
    @settings(max_examples=15, deadline=None)
    def test_bit_exact_random_k(self, k):
        rng = np.random.default_rng(k)
        a = quantize(rng.normal(size=(4, k)), INT16)
        b = quantize(rng.normal(size=(k, 4)), INT16)
        result = CycleSimulator(cfg()).run_gemm_tile(a, b)
        assert np.array_equal(result.output, fixed_matmul(a, b, INT16))


class TestMHPCycleSim:
    @pytest.mark.parametrize("rows,cols", [(4, 4), (8, 5), (3, 7), (1, 1), (9, 2)])
    def test_bit_exact_vs_reference(self, rows, cols):
        rng = np.random.default_rng(rows * 10 + cols)
        x = quantize(rng.normal(size=(rows, cols)), INT16)
        k = quantize(rng.normal(size=(rows, cols)), INT16)
        b = quantize(rng.normal(size=(rows, cols)), INT16)
        result = CycleSimulator(cfg()).run_mhp(x, k, b)
        assert np.array_equal(result.output, fixed_hadamard_mac(x, k, b, INT16))

    def test_only_diagonal_pes_compute(self):
        """The Section IV-B dataflow: computation PEs on the diagonal,
        transmission PEs everywhere else."""
        rng = np.random.default_rng(5)
        shape = (8, 6)
        x = quantize(rng.normal(size=shape), INT16)
        result = CycleSimulator(cfg()).run_mhp(x, x, x)
        off_diag = result.mac_ops_by_pe.copy()
        np.fill_diagonal(off_diag, 0)
        assert off_diag.max() == 0
        assert np.all(np.diag(result.mac_ops_by_pe) > 0)

    def test_transmission_pes_forward(self):
        rng = np.random.default_rng(6)
        x = quantize(rng.normal(size=(8, 6)), INT16)
        result = CycleSimulator(cfg()).run_mhp(x, x, x)
        # PEs west of the last diagonal lane must have forwarded data.
        assert result.forwards_by_pe[3, 0] > 0

    def test_diagonal_macs_proportional_to_lane_load(self):
        x = quantize(np.random.default_rng(7).normal(size=(4, 5)), INT16)
        result = CycleSimulator(cfg()).run_mhp(x, x, x)
        # Each lane got one row of 5 elements, 2 MACs per element.
        assert np.all(np.diag(result.mac_ops_by_pe) == 10)

    def test_mismatched_operands_rejected(self):
        sim = CycleSimulator(cfg())
        with pytest.raises(ValueError):
            sim.run_mhp(np.zeros((2, 2)), np.zeros((2, 3)), np.zeros((2, 2)))

    def test_agreement_with_vectorized_dataflow(self):
        """Cycle sim and the fast lane-based executor must agree."""
        from repro.systolic.mhp_dataflow import execute_mhp

        rng = np.random.default_rng(8)
        x = quantize(rng.normal(size=(10, 4)), INT16)
        k = quantize(rng.normal(size=(10, 4)), INT16)
        b = quantize(rng.normal(size=(10, 4)), INT16)
        fast, _ = execute_mhp(cfg(), x, k, b)
        slow = CycleSimulator(cfg()).run_mhp(x, k, b)
        assert np.array_equal(fast, slow.output)
