"""Regenerate every paper table and figure in one run.

    python examples/run_all_experiments.py          # full (slower Table III)
    python examples/run_all_experiments.py --quick  # one task per family
"""

import sys

from repro.evaluation.summary import print_report


def main() -> None:
    quick = "--quick" in sys.argv[1:]
    print_report(quick=quick)


if __name__ == "__main__":
    main()
