"""Op-mix profiler (reproduces Fig. 1).

Fig. 1 shows the *computation share* of each op type when a network
runs on conventional hardware — where nonlinear functions are far more
expensive per element than a MAC (transcendental evaluation, divisions,
reductions).  The profiler therefore weights each op kind by a
per-element cost in MAC-equivalents.  The weights reflect measured
per-op kernel behaviour on CPUs — transcendental evaluation costs one
to a few hundred simple ops via libm, and unfused elementwise /
normalization kernels are memory-bound, so their effective
MAC-equivalent cost is far above 1 — and are calibrated so the two
Fig. 1 networks reproduce the published shares.

The same machinery with ``ARRAY_COST_WEIGHTS`` reports the mix in
ONE-SA cycles, where every nonlinear op collapses to a handful of MHP
passes — the before/after picture motivating the paper.
"""

from __future__ import annotations

from typing import Dict

from repro.nn.workload import Workload
from repro.systolic.config import SystolicConfig

#: Per-element cost (MAC-equivalents) of each op kind on a
#: general-purpose processor.  GEMM cost is per MAC.
CPU_COST_WEIGHTS: Dict[str, float] = {
    "gemm": 1.0,
    "multiply": 1.0,
    "add": 10.0,  # unfused elementwise kernels are memory-bound
    "relu": 28.0,
    "batchnorm": 110.0,  # per-channel statistics, strided, unfused
    "softmax": 300.0,  # exp + reduction + divide per element
    "layernorm": 170.0,  # two reductions + rsqrt + affine per element
    "gelu": 180.0,  # erf/tanh evaluation per element
    "tanh": 120.0,
    "sigmoid": 120.0,
}

#: Cost per element in ONE-SA terms: one MHP pass handles one element
#: per computation-PE MAC pair, so composite ops cost their pass count.
ARRAY_COST_WEIGHTS: Dict[str, float] = {
    "gemm": 1.0,
    "multiply": 1.0,
    "add": 1.0,
    "relu": 1.0,
    "batchnorm": 1.0,
    "softmax": 3.0,
    "layernorm": 4.0,
    "gelu": 1.0,
    "tanh": 1.0,
    "sigmoid": 1.0,
}


def op_mix(workload: Workload, weights: Dict[str, float] = None) -> Dict[str, float]:
    """Fractional computation share per op kind.

    Parameters
    ----------
    workload:
        The op inventory to profile.
    weights:
        Per-kind cost weights; defaults to :data:`CPU_COST_WEIGHTS`
        (the Fig. 1 view).
    """
    weights = weights or CPU_COST_WEIGHTS
    costs: Dict[str, float] = {"gemm": workload.total_macs * weights["gemm"]}
    for kind, elements in workload.elements_by_kind().items():
        costs[kind] = costs.get(kind, 0.0) + elements * weights.get(kind, 1.0)
    total = sum(costs.values())
    if not total:
        return {}
    return {kind: cost / total for kind, cost in sorted(costs.items())}


def cycle_mix(workload: Workload, config: SystolicConfig) -> Dict[str, float]:
    """Cycle share per op kind when the workload runs on a design point."""
    from repro.systolic.timing import gemm_cycles, nonlinear_cycles
    from repro.nn.workload import GemmOp

    cycles: Dict[str, float] = {}
    for op in workload.ops:
        if isinstance(op, GemmOp):
            c = gemm_cycles(config, op.m, op.k, op.n).total * op.count
            cycles["gemm"] = cycles.get("gemm", 0.0) + c
        else:
            c = (
                nonlinear_cycles(config, op.m, op.n).total
                * op.mhp_passes
                * op.count
            )
            cycles[op.kind] = cycles.get(op.kind, 0.0) + c
    total = sum(cycles.values())
    return {kind: c / total for kind, c in sorted(cycles.items())} if total else {}
