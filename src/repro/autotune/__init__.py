"""Trace-driven autotuning: record traffic, replay candidates, keep the front.

This subpackage closes the loop between the serving stack and the
paper's design-space machinery — the serving system picks its own
pool composition, placement policy, cache budgets and batching knobs
from the traffic it actually saw, instead of a human guessing them:

* **traces** (:mod:`repro.autotune.trace`) — a
  :class:`~repro.autotune.trace.TraceRecorder` attached to a live
  :class:`~repro.serving.engine.InferenceEngine` captures every
  submitted request into a versioned, store-persisted
  :class:`~repro.autotune.trace.TrafficTrace`;
  :func:`~repro.autotune.trace.synthesize_trace` draws seeded
  bursty/skewed/conversational workloads for what-if studies;
* **candidates** (:mod:`repro.autotune.tuning`) — a
  :class:`~repro.autotune.tuning.TuningConfig` is one deployment as
  data (shard design points, placement + occupancy penalty, batch
  and admission knobs, cache byte budgets), drawn from a bounded
  :class:`~repro.autotune.tuning.ConfigSpace`;
* **replay** (:mod:`repro.autotune.replay`) — re-drives a trace
  through a fresh engine built from a candidate, deterministically:
  same trace + same config ⇒ a bit-identical
  :class:`~repro.serving.report.ServingReport` (pinned via
  :func:`~repro.autotune.replay.report_fingerprint`);
* **objective** (:mod:`repro.autotune.objective`) — scores a replay
  into ``(cost, slo_attainment, p99, tokens_per_sec)``, pricing the
  pool from the paper's resource/power models;
* **search** (:mod:`repro.autotune.search`) — seeded random and
  evolutionary drivers, fanned out across worker processes, feeding
  every scored candidate through the existing
  :func:`~repro.hardware.pareto.pareto_front` dominance code;
* **the front** (:mod:`repro.autotune.front`) — the surviving
  cost-vs-SLO trade-offs as a persisted, resumable
  :class:`~repro.autotune.front.TuningFront` artifact.

See ``docs/autotuning.md`` for the operator guide and
``examples/autotune_demo.py`` for the record → search → re-serve
round trip.
"""

from repro.autotune.front import (
    FRONT_NAMESPACE,
    FRONT_VERSION,
    FrontEntry,
    TuningFront,
    load_front,
    save_front,
)
from repro.autotune.objective import (
    Objective,
    objective_from_report,
    pool_cost,
    scalar_score,
    shard_cost,
)
from repro.autotune.replay import (
    EndpointSpec,
    WorkloadCostSpec,
    build_engine,
    evaluate,
    replay_trace,
    report_fingerprint,
)
from repro.autotune.search import (
    EvaluationFailedError,
    evolutionary_search,
    random_search,
)
from repro.autotune.trace import (
    TRACE_NAMESPACE,
    TRACE_VERSION,
    EndpointProfile,
    TracedRequest,
    TraceRecorder,
    TrafficTrace,
    load_trace,
    save_trace,
    synthesize_trace,
)
from repro.autotune.tuning import ConfigSpace, TuningConfig, default_space

__all__ = [
    "TRACE_NAMESPACE",
    "TRACE_VERSION",
    "EndpointProfile",
    "TracedRequest",
    "TraceRecorder",
    "TrafficTrace",
    "load_trace",
    "save_trace",
    "synthesize_trace",
    "ConfigSpace",
    "TuningConfig",
    "default_space",
    "Objective",
    "objective_from_report",
    "pool_cost",
    "scalar_score",
    "shard_cost",
    "EndpointSpec",
    "WorkloadCostSpec",
    "build_engine",
    "evaluate",
    "replay_trace",
    "report_fingerprint",
    "EvaluationFailedError",
    "evolutionary_search",
    "random_search",
    "FRONT_NAMESPACE",
    "FRONT_VERSION",
    "FrontEntry",
    "TuningFront",
    "load_front",
    "save_front",
]
