"""Per-shard / per-model stats descriptor tree feeding elastic decisions.

The elastic runtime needs one telemetry shape three consumers agree
on: look-ahead placement and work-stealing read per-shard drift (how
far actual traced cycles run from calibrated estimates), the
autoscaler reads per-shard utilization and backlog, and the report
renders the whole picture for humans.  This module provides both:

* :class:`ShardStats` — the live per-shard accumulator the engine
  updates after every executed batch (cycles, busy seconds, the
  drift EWMA steals trigger on);
* :func:`cluster_desc` / :func:`render_cluster_desc` — a nested
  ``{type, stats, sinks}`` descriptor tree (cluster → shards → model
  endpoints) built from a finished
  :class:`~repro.serving.report.ServingReport`, rendered with the
  ``net_desc``/``render_net_desc`` aggregation idiom: one stats line
  per node, children indented under ``↳`` with ``|`` continuation
  rails.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class ShardStats:
    """Live accumulator of one shard's execution statistics.

    ``drift`` is an exponentially weighted moving average of
    ``actual / estimated`` service seconds over the shard's executed
    batches — 1.0 means the calibrated cost model prices this shard
    perfectly, 2.0 means work takes twice the estimate (a slowdown
    fault, thermal throttling, a stale calibration).  It is a ratio of
    *seconds*, not cycles, so an injected slowdown — which stretches
    the timeline while the traced cycle count stands — registers.
    Work-stealing scales a planned shard's ETA by its drift before
    deciding whether a queued batch should migrate.
    """

    __slots__ = (
        "shard", "batches", "cycles", "busy_seconds",
        "estimated_seconds", "drift", "steals_in", "steals_out",
    )

    #: EWMA smoothing weight of the newest observation.
    ALPHA = 0.25

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self.batches = 0
        self.cycles = 0
        self.busy_seconds = 0.0
        self.estimated_seconds = 0.0
        self.drift = 1.0
        self.steals_in = 0
        self.steals_out = 0

    def observe(
        self,
        cycles: int,
        duration: float,
        estimated_seconds: Optional[float] = None,
    ) -> None:
        """Record one executed batch (and its estimate, when priced)."""
        self.batches += 1
        self.cycles += int(cycles)
        self.busy_seconds += float(duration)
        if estimated_seconds is not None and estimated_seconds > 0 and duration > 0:
            self.estimated_seconds += float(estimated_seconds)
            ratio = duration / estimated_seconds
            self.drift += self.ALPHA * (ratio - self.drift)

    def as_stats(self) -> Dict[str, float]:
        return {
            "batches": self.batches,
            "cycles": self.cycles,
            "busy_s": self.busy_seconds,
            "drift": self.drift,
            "steals_in": self.steals_in,
            "steals_out": self.steals_out,
        }

    def reset(self) -> None:
        self.batches = 0
        self.cycles = 0
        self.busy_seconds = 0.0
        self.estimated_seconds = 0.0
        self.drift = 1.0
        self.steals_in = 0
        self.steals_out = 0


# ---------------------------------------------------------------------------
# Descriptor tree over a finished report
# ---------------------------------------------------------------------------
def render_stats(stats: Dict[str, object]) -> str:
    """``(k=v; ...)`` stats line, keys sorted, empty stats elided."""
    return (
        "(%s)" % "; ".join("%s=%.4g" % item for item in sorted(stats.items()))
        if stats else ""
    )


def cluster_desc(report) -> Dict[str, object]:
    """The cluster's ``{type, name, stats, sinks}`` descriptor tree.

    Root: pool-wide aggregates (makespan, utilization spread, steal /
    scaling counts).  Sinks: one node per shard that did or could do
    work, each carrying its utilization, busy seconds, traced cycles
    and placement count, with one leaf per model endpoint the shard
    served (batch and cycle share).
    """
    makespan = report.makespan
    utilization = report.shard_utilization()
    shards = sorted(
        set(report.shard_busy) | set(report.shard_cycles) | set(utilization)
    )

    # Per-shard, per-model batch/cycle tallies from the placement log.
    per_shard_models: Dict[int, Dict[str, Dict[str, float]]] = {}
    for decision in report.placements:
        models = per_shard_models.setdefault(decision.shard, {})
        entry = models.setdefault(decision.model, {"batches": 0, "cycles": 0})
        entry["batches"] += 1
        entry["cycles"] += decision.batch_cycles

    steals_out: Dict[int, int] = {}
    steals_in: Dict[int, int] = {}
    for steal in getattr(report, "steals", ()):
        steals_out[steal.from_shard] = steals_out.get(steal.from_shard, 0) + 1
        steals_in[steal.to_shard] = steals_in.get(steal.to_shard, 0) + 1

    def shard_node(shard: int) -> Dict[str, object]:
        stats: Dict[str, object] = {
            "util": utilization.get(shard, 0.0),
            "busy_s": report.shard_busy.get(shard, 0.0),
            "cycles": report.shard_cycles.get(shard, 0),
        }
        if shard in steals_in or shard in steals_out:
            stats["steals_in"] = steals_in.get(shard, 0)
            stats["steals_out"] = steals_out.get(shard, 0)
        return {
            "type": "Shard",
            "name": f"shard{shard}",
            "stats": stats,
            "sinks": [
                {
                    "type": "Model",
                    "name": model,
                    "stats": dict(entry),
                    "sinks": [],
                }
                for model, entry in sorted(
                    per_shard_models.get(shard, {}).items()
                )
            ],
        }

    busy = [report.shard_busy.get(shard, 0.0) for shard in shards]
    root_stats: Dict[str, object] = {
        "makespan_s": makespan,
        "batches": len(report.placements),
        "shards": len(shards),
    }
    spread = report.utilization_spread()
    if spread is not None:
        root_stats["util_spread"] = spread
    if getattr(report, "steals", ()):
        root_stats["steals"] = len(report.steals)
    if getattr(report, "scaling_events", ()):
        root_stats["scalings"] = len(report.scaling_events)
    return {
        "type": "Cluster",
        "name": report.placement_policy,
        "stats": root_stats,
        "sinks": [shard_node(shard) for shard in shards],
    }


def _render_node(desc: Dict[str, object]) -> str:
    sinks: List[Dict[str, object]] = desc.get("sinks", [])
    sink_text = "".join(
        "\n↳ " + _render_node(sink).replace(
            "\n", "\n| " if i < len(sinks) - 1 else "\n  "
        )
        for i, sink in enumerate(sinks)
    )
    label = desc.get("name") or desc["type"]
    return "%s %s%s" % (label, render_stats(desc.get("stats", {})), sink_text)


def render_cluster_desc(desc: Dict[str, object]) -> str:
    """Render a :func:`cluster_desc` tree, one node per line."""
    return _render_node(desc)
