"""Workload descriptor and profiler tests (Fig. 1 / Table IV substrate)."""

import numpy as np
import pytest

from repro.nn.profiler import ARRAY_COST_WEIGHTS, CPU_COST_WEIGHTS, cycle_mix, op_mix
from repro.nn.workload import (
    GemmOp,
    NonlinearOp,
    Workload,
    bert_base_workload,
    gcn_workload,
    paper_workloads,
    resnet50_workload,
)
from repro.systolic.config import ONE_SA_PAPER_CONFIG


class TestOps:
    def test_gemm_macs(self):
        assert GemmOp(2, 3, 4, count=5).macs == 120

    def test_nonlinear_elements_and_passes(self):
        op = NonlinearOp("softmax", 4, 8, count=2)
        assert op.elements == 64
        assert op.mhp_passes == 3

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            NonlinearOp("fft", 4, 4)

    def test_workload_builders_chain(self):
        wl = Workload("t").add_gemm(2, 2, 2).add_nonlinear("relu", 2, 2)
        assert wl.total_macs == 8
        assert wl.total_nonlinear_elements == 4


class TestPublishedWorkloads:
    def test_resnet50_mac_count(self):
        """ResNet-50 at 224x224 is ~4.1 G MACs (torchvision's count),
        matching the ~4 G ops Table IV's CPU row implies."""
        wl = resnet50_workload()
        assert 3.5e9 < wl.total_macs < 4.3e9

    def test_resnet50_op_kinds(self):
        kinds = set(resnet50_workload().elements_by_kind())
        assert {"batchnorm", "relu", "softmax", "add"} <= kinds

    def test_bert_base_mac_count(self):
        """BERT-base at seq 64: the paper's implied ~5.5 G ops."""
        wl = bert_base_workload()
        assert 5.0e9 < wl.total_macs < 6.0e9

    def test_bert_op_kinds(self):
        kinds = set(bert_base_workload().elements_by_kind())
        assert {"softmax", "layernorm", "gelu", "add"} <= kinds

    def test_bert_scales_with_sequence(self):
        assert bert_base_workload(128).total_macs > bert_base_workload(64).total_macs

    def test_gcn_mac_count(self):
        """GCN sized to the paper's implied ~1.2 G ops."""
        wl = gcn_workload()
        assert 0.9e9 < wl.total_macs < 1.5e9

    def test_paper_workloads_registry(self):
        wls = paper_workloads()
        assert set(wls) == {"resnet50", "bert-base", "gcn"}


class TestWorkloadTiming:
    def test_latency_positive_and_sane(self):
        cfg = ONE_SA_PAPER_CONFIG
        for wl in paper_workloads().values():
            latency = wl.latency_seconds(cfg)
            assert 1e-3 < latency < 1.0  # ms to sub-second range

    def test_throughput_below_peak(self):
        from repro.systolic.timing import peak_gops

        cfg = ONE_SA_PAPER_CONFIG
        for wl in paper_workloads().values():
            # Elementwise ops inflate the op count slightly, so allow
            # a small margin above the pure-GEMM peak.
            assert wl.throughput_gops(cfg) < 1.1 * peak_gops(cfg)

    def test_gemm_cycle_share_dominates(self):
        cfg = ONE_SA_PAPER_CONFIG
        for wl in paper_workloads().values():
            share = wl.gemm_cycle_share(cfg)
            assert 0.5 < share <= 1.0

    def test_latency_improves_with_macs(self):
        wl = bert_base_workload()
        fast = wl.latency_seconds(ONE_SA_PAPER_CONFIG)
        slow = wl.latency_seconds(ONE_SA_PAPER_CONFIG.with_size(8, 4))
        assert fast < slow


class TestProfiler:
    def test_mix_sums_to_one(self):
        for wl in paper_workloads().values():
            assert sum(op_mix(wl).values()) == pytest.approx(1.0)

    def test_fig1a_resnet_shape(self):
        """Fig. 1(a): GEMM ~72%, batchnorm ~21%, relu ~5% for the
        CIFAR-sized ResNet."""
        mix = op_mix(resnet50_workload(image_size=32))
        assert 0.65 < mix["gemm"] < 0.80
        assert 0.15 < mix["batchnorm"] < 0.28
        assert 0.02 < mix["relu"] < 0.08
        assert mix["batchnorm"] > mix["relu"] > mix["softmax"]

    def test_fig1b_bert_shape(self):
        """Fig. 1(b): GEMM ~82%, GELU largest nonlinear, then
        layernorm, then softmax."""
        mix = op_mix(bert_base_workload())
        assert 0.78 < mix["gemm"] < 0.92
        assert mix["gelu"] > mix["layernorm"] > mix["softmax"]
        assert 0.03 < mix["gelu"] < 0.10

    def test_array_view_collapses_nonlinear(self):
        """On ONE-SA the nonlinear share collapses to MHP passes."""
        cpu = op_mix(resnet50_workload(image_size=32), CPU_COST_WEIGHTS)
        arr = op_mix(resnet50_workload(image_size=32), ARRAY_COST_WEIGHTS)
        assert arr["gemm"] > cpu["gemm"]
        assert arr["batchnorm"] < cpu["batchnorm"]

    def test_cycle_mix_on_design_point(self):
        mix = cycle_mix(bert_base_workload(), ONE_SA_PAPER_CONFIG)
        assert sum(mix.values()) == pytest.approx(1.0)
        assert mix["gemm"] > 0.5
