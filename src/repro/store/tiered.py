"""Two-level store: a fast local tier over a shared fabric tier.

Multi-worker serving wants both properties at once: plan/approximator
lookups must stay in-memory dict hits (the serving hot path), yet a
plan built by one worker should be visible to every other.
:class:`TieredStore` composes them: reads check the local tier first
and fall through to the shared tier (promoting hits into the local
tier, charged at their declared byte size); writes go through to both
tiers.  The local tier is typically an
:class:`~repro.store.lru.InProcessLRU` and the shared tier a
:class:`~repro.store.filestore.FileStore` all workers point at.

Budgets set through :meth:`set_limit` apply to the *local* tier (each
process bounds its own memory); the shared tier keeps whatever limits
it was configured with — one fabric-wide policy, not N copies of a
per-process one.  Stats report the tiered view: a hit in either tier
is a hit, occupancy is the local tier's, and the per-tier breakdowns
stay available on the underlying stores.

**Degraded mode.**  The shared tier is an availability liability the
local tier is not: another process can wedge a fabric lock (die while
holding it, stall on a slow filesystem) and a blocking store call
would freeze the worker.  When any shared-tier operation raises
:class:`~repro.store.base.StoreLockTimeout`, the tiered store *drops
to local-only*: the failing operation completes against the local
tier, ``degraded`` latches True, and every subsequent shared-tier
touch is skipped (counted in ``degraded_ops``) until
:meth:`recover` is called.  Correctness is preserved — the fabric is
a cache of deterministically recomputable artifacts, so losing it
costs recomputation, never wrong answers.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.store.base import (
    MISSING,
    CacheStore,
    NamespaceLimit,
    NamespaceStats,
    StoreLockTimeout,
)


class TieredStore(CacheStore):
    """Read-through / write-through composition of two stores."""

    def __init__(self, local: CacheStore, shared: CacheStore) -> None:
        self.local = local
        self.shared = shared
        self._stats: Dict[str, NamespaceStats] = {}
        #: Latched True after a shared-tier lock timeout; the store
        #: then serves from the local tier only until :meth:`recover`.
        self.degraded = False
        #: Shared-tier operations skipped (or failed-over) while degraded.
        self.degraded_ops = 0

    def _pstats(self, namespace: str) -> NamespaceStats:
        stats = self._stats.get(namespace)
        if stats is None:
            stats = self._stats[namespace] = NamespaceStats()
        return stats

    def _shared(self, op: Callable[[], object], fallback):
        """Run one shared-tier operation with lock-timeout failover.

        Degraded short-circuits to ``fallback``; a fresh
        :class:`StoreLockTimeout` enters degraded mode and returns
        ``fallback`` for the failing call — the caller's local-tier
        work has already happened or still will, so the worker keeps
        serving.
        """
        if self.degraded:
            self.degraded_ops += 1
            return fallback
        try:
            return op()
        except StoreLockTimeout:
            self.degraded = True
            self.degraded_ops += 1
            return fallback

    def recover(self) -> bool:
        """Re-arm the shared tier after degraded mode; True if it was
        degraded.  Entries written while degraded live only in the
        local tier — the fabric re-fills through normal write-through
        traffic, it is not back-filled retroactively."""
        was_degraded = self.degraded
        self.degraded = False
        return was_degraded

    # -- core ------------------------------------------------------------
    def get(self, namespace: str, key, default=None, touch: bool = True):
        stats = self._pstats(namespace)
        value = self.local.get(namespace, key, MISSING, touch=touch)
        if value is not MISSING:
            # Read-through invalidation for *versioned* entries: a
            # local hit is stale when another worker wrote a newer
            # version to the shared tier.  Unversioned entries (the
            # overwhelming majority — plans, prefix payloads) skip the
            # probe entirely and keep the historical local-hit path.
            local_version = self.local.version_of(namespace, key)
            if local_version is not None:
                shared_version = self._shared(
                    lambda: self.shared.version_of(namespace, key), None
                )
                if shared_version is not None and shared_version > local_version:
                    fresh = self._shared(
                        lambda: self.shared.get(namespace, key, MISSING, touch=touch),
                        MISSING,
                    )
                    if fresh is not MISSING:
                        nbytes = self._shared(
                            lambda: self.shared.nbytes_of(namespace, key), 0
                        )
                        self.local.put(
                            namespace, key, fresh,
                            nbytes=nbytes, version=shared_version,
                        )
                        stats.hits += 1
                        return fresh
            stats.hits += 1
            return value
        value = self._shared(
            lambda: self.shared.get(namespace, key, MISSING, touch=touch),
            MISSING,
        )
        if value is not MISSING:
            # Promote: later reads are local dict hits.  The shared
            # tier knows the entry's declared byte charge and version.
            nbytes = self._shared(
                lambda: self.shared.nbytes_of(namespace, key), 0
            )
            version = self._shared(
                lambda: self.shared.version_of(namespace, key), None
            )
            self.local.put(namespace, key, value, nbytes=nbytes, version=version)
            stats.hits += 1
            return value
        stats.misses += 1
        return default

    def put(
        self,
        namespace: str,
        key,
        value,
        nbytes: int = 0,
        version: Optional[int] = None,
    ) -> bool:
        stats = self._pstats(namespace)
        accepted = self.local.put(namespace, key, value, nbytes=nbytes, version=version)
        self._shared(
            lambda: self.shared.put(namespace, key, value, nbytes=nbytes,
                                    version=version),
            False,
        )
        if accepted:
            stats.insertions += 1
        else:
            stats.rejections += 1
        return accepted

    def version_of(self, namespace: str, key) -> Optional[int]:
        local = self.local.version_of(namespace, key)
        if local is not None:
            return local
        return self._shared(lambda: self.shared.version_of(namespace, key), None)

    def contains(self, namespace: str, key) -> bool:
        return self.local.contains(namespace, key) or bool(
            self._shared(lambda: self.shared.contains(namespace, key), False)
        )

    def touch(self, namespace: str, key) -> None:
        self.local.touch(namespace, key)
        self._shared(lambda: self.shared.touch(namespace, key), None)

    def delete(self, namespace: str, key) -> bool:
        local = self.local.delete(namespace, key)
        shared = bool(
            self._shared(lambda: self.shared.delete(namespace, key), False)
        )
        return local or shared

    def clear(self, namespace: Optional[str] = None) -> None:
        self.local.clear(namespace)
        self._shared(lambda: self.shared.clear(namespace), None)

    # -- enumeration -----------------------------------------------------
    def keys(self, namespace: str) -> List[object]:
        return self.local.keys(namespace)

    def values(self, namespace: str) -> List[object]:
        return self.local.values(namespace)

    def nbytes_of(self, namespace: str, key) -> int:
        local = self.local.nbytes_of(namespace, key)
        if local:
            return local
        return int(self._shared(lambda: self.shared.nbytes_of(namespace, key), 0))

    # -- budgets and stats ----------------------------------------------
    def set_limit(
        self,
        namespace: str,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        self.local.set_limit(namespace, max_entries=max_entries, max_bytes=max_bytes)

    def limit(self, namespace: str) -> NamespaceLimit:
        return self.local.limit(namespace)

    def stats(self, namespace: Optional[str] = None) -> Dict[str, object]:
        if namespace is None:
            names = set(self._stats)
            names.update(self.local.stats())
            return {name: self.stats(name) for name in sorted(names)}
        merged = dict(self.local.stats(namespace))
        own = self._pstats(namespace)
        merged["hits"] = own.hits
        merged["misses"] = own.misses
        merged["insertions"] = own.insertions
        merged["rejections"] = own.rejections
        return merged

    def reset_stats(self, namespace: Optional[str] = None) -> None:
        targets = [namespace] if namespace is not None else list(self._stats)
        for name in targets:
            self._pstats(name).reset_counters()
        self.local.reset_stats(namespace)
        self._shared(lambda: self.shared.reset_stats(namespace), None)
